#include "src/namespace/namespace_tree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "src/util/path.h"

namespace lfs::ns {

namespace {

std::string
describe(std::string_view what, std::string_view p)
{
    std::string out(what);
    out += p;
    return out;
}

/**
 * LFS_NAMESPACE_BUDGET_MB: byte budget for slab-resident inode records.
 * Unset/empty disables paging entirely (the tree stays fully resident
 * and behaves byte-identically to the pre-two-tier implementation).
 * Parsing is strict — a typo must not silently run an unbudgeted
 * experiment (same contract as the bench harness env parsers).
 */
size_t
budget_from_env()
{
    const char* raw = std::getenv("LFS_NAMESPACE_BUDGET_MB");
    if (raw == nullptr || *raw == '\0') {
        return SIZE_MAX;
    }
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 10);
    if (errno != 0 || end == raw || *end != '\0') {
        std::fprintf(stderr,
                     "LFS_NAMESPACE_BUDGET_MB='%s' is not a whole number "
                     "of megabytes\n",
                     raw);
        std::abort();
    }
    return static_cast<size_t>(v) * 1024 * 1024;
}

/** check_access over the packed record (same bits as the INode form). */
bool
rec_access(const INodeRec& rec, const UserContext& user, Access access)
{
    if (user.is_superuser()) {
        return true;
    }
    uint16_t bits = static_cast<uint16_t>(access);
    uint16_t mode = rec.mode;
    if (rec.owner == user.uid) {
        return ((mode >> 6) & bits) == bits;
    }
    if (rec.group == user.gid) {
        return ((mode >> 3) & bits) == bits;
    }
    return (mode & bits) == bits;
}

int64_t
fault_elapsed_ns(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

NamespaceTree::NamespaceTree() : budget_bytes_(budget_from_env())
{
    uint32_t slot = slab_.alloc();
    INodeRec& root = slab_.at(slot);
    root = INodeRec{};
    root.id = kRootId;
    root.parent = kInvalidId;
    root.name_id = NameTable::kNoName;
    root.type = INodeType::kDirectory;
    root.mode = 0777;
    root.aux = alloc_dir_table();
    index_.insert(static_cast<uint64_t>(kRootId), slot + 1);
}

// ----------------------------------------------------------------------
// Residency internals
// ----------------------------------------------------------------------

INodeRec*
NamespaceTree::resident_ptr(INodeId id) const
{
    uint64_t v = index_.find_exact(static_cast<uint64_t>(id));
    return v == 0 ? nullptr : &slab_.at(static_cast<uint32_t>(v - 1));
}

bool
NamespaceTree::read_any(INodeId id, INodeRec* out) const
{
    if (const INodeRec* rec = resident_ptr(id)) {
        *out = *rec;
        return true;
    }
    return cold_.get(id, out);
}

INodeRec*
NamespaceTree::fetch(INodeId id) const
{
    if (uint64_t v = index_.find_exact(static_cast<uint64_t>(id)); v != 0) {
        INodeRec& rec = slab_.at(static_cast<uint32_t>(v - 1));
        rec.flags |= INodeRec::kFlagReferenced;
        return &rec;
    }
    auto t0 = std::chrono::steady_clock::now();
    INodeRec cold_rec;
    if (!cold_.get(id, &cold_rec)) {
        return nullptr;
    }
    uint32_t slot = slab_.alloc();
    INodeRec& rec = slab_.at(slot);
    rec = cold_rec;
    rec.flags = INodeRec::kFlagReferenced;
    index_.insert(static_cast<uint64_t>(id), slot + 1);
    ring_push(slot, id);
    cold_.erase(id);
    --cold_count_;
    ++evictable_;
    ++pageins_;
    fault_ns_.record(fault_elapsed_ns(t0));
    return &rec;
}

void
NamespaceTree::evict_slot(uint32_t slot) const
{
    INodeRec& rec = slab_.at(slot);
    INodeRec copy = rec;
    copy.flags &= static_cast<uint8_t>(~INodeRec::kFlagReferenced);
    cold_.put(copy);
    index_.erase_key(static_cast<uint64_t>(rec.id));
    slab_.free_slot(slot);
    ++cold_count_;
    --evictable_;
    ++pageouts_;
}

void
NamespaceTree::ring_push(uint32_t slot, INodeId id) const
{
    if (budget_bytes_ != SIZE_MAX) {
        evict_ring_.push_back(EvictEntry{slot, id});
    }
}

void
NamespaceTree::rebuild_evict_ring() const
{
    evict_ring_.clear();
    for (uint32_t slot = 0; slot < slab_.span(); ++slot) {
        const INodeRec& rec = slab_.at(slot);
        if (rec.id != kInvalidId && rec.is_file()) {
            evict_ring_.push_back(EvictEntry{slot, rec.id});
        }
    }
}

void
NamespaceTree::enforce_budget() const
{
    if (budget_bytes_ == SIZE_MAX) {
        return;
    }
    // Second-chance over the candidate ring: referenced records get their
    // bit cleared and one more lap; unreferenced file records page out.
    // Stale entries (deleted or already-evicted generations) drop on
    // contact. The guard bounds one enforcement to ~two laps; an
    // unfinished sweep resumes at the next op exit.
    size_t guard = 2 * evict_ring_.size() + 16;
    while (slab_.live_bytes() > budget_bytes_ && !evict_ring_.empty() &&
           guard-- > 0) {
        EvictEntry e = evict_ring_.front();
        evict_ring_.pop_front();
        INodeRec& rec = slab_.at(e.slot);
        if (rec.id != e.id || !rec.is_file()) {
            continue;  // stale: slot freed or reused since enqueue
        }
        if ((rec.flags & INodeRec::kFlagReferenced) != 0) {
            rec.flags &= static_cast<uint8_t>(~INodeRec::kFlagReferenced);
            evict_ring_.push_back(e);
            continue;
        }
        evict_slot(e.slot);
    }
}

void
NamespaceTree::set_budget_bytes(size_t bytes)
{
    const bool was_off = budget_bytes_ == SIZE_MAX;
    budget_bytes_ = bytes;
    if (bytes != SIZE_MAX && was_off) {
        // Files created while the budget was off were never enqueued.
        rebuild_evict_ring();
    }
    enforce_budget();
}

ResidencyStats
NamespaceTree::residency_stats() const
{
    ResidencyStats out;
    out.resident_inodes = slab_.live();
    out.cold_inodes = cold_count_;
    out.slab_bytes = slab_.live_bytes();
    size_t dir_bytes = 0;
    for (const DirTable& tab : dir_tables_) {
        dir_bytes += tab.capacity_bytes() + sizeof(DirTable);
    }
    out.resident_bytes = out.slab_bytes + index_.capacity_bytes() +
                         dir_bytes + names_.resident_bytes() +
                         targets_.resident_bytes();
    out.cold_bytes = cold_.bytes();
    out.pageins = pageins_;
    out.pageouts = pageouts_;
    size_t total = slab_.live() + cold_count_;
    if (total > 0) {
        out.bytes_per_inode =
            static_cast<double>(out.resident_bytes) /
            static_cast<double>(total);
    }
    return out;
}

// ----------------------------------------------------------------------
// Directory tables and materialization
// ----------------------------------------------------------------------

NamespaceTree::DirTable&
NamespaceTree::dir_table(const INodeRec& dir)
{
    return dir_tables_[dir.aux];
}

const NamespaceTree::DirTable&
NamespaceTree::dir_table(const INodeRec& dir) const
{
    return dir_tables_[dir.aux];
}

uint32_t
NamespaceTree::alloc_dir_table()
{
    if (!dir_free_.empty()) {
        uint32_t idx = dir_free_.back();
        dir_free_.pop_back();
        return idx;
    }
    dir_tables_.emplace_back();
    return static_cast<uint32_t>(dir_tables_.size() - 1);
}

void
NamespaceTree::free_dir_table(uint32_t idx)
{
    dir_tables_[idx].clear();
    dir_free_.push_back(idx);
}

const std::string&
NamespaceTree::name_of(const INodeRec& rec) const
{
    static const std::string empty;
    return rec.name_id == NameTable::kNoName ? empty
                                             : names_.name(rec.name_id);
}

INode
NamespaceTree::materialize(const INodeRec& rec) const
{
    INode out;
    out.id = rec.id;
    out.parent = rec.parent;
    out.name = name_of(rec);
    out.type = rec.type;
    out.perms.mode = rec.mode;
    out.perms.owner = rec.owner;
    out.perms.group = rec.group;
    out.size = rec.size;
    out.block_count = rec.block_count;
    out.mtime = rec.mtime;
    out.ctime = rec.ctime;
    out.version = rec.version;
    out.nlink = rec.nlink;
    out.symlink_target =
        rec.is_symlink() ? targets_.name(rec.aux) : std::string();
    return out;
}

// ----------------------------------------------------------------------
// Resolution and reads
// ----------------------------------------------------------------------

StatusOr<ResolvedPath>
NamespaceTree::resolve(std::string_view p, const UserContext& user,
                       Follow follow) const
{
    OpScope scope(this);
    return resolve_ex(p, user, follow == Follow::kFinal, 0);
}

StatusOr<ResolvedPath>
NamespaceTree::resolve_ex(std::string_view p, const UserContext& user,
                          bool follow_final, int depth) const
{
    if (!path::is_valid(p)) {
        return Status::invalid_argument(describe("bad path: ", p));
    }
    ResolvedPath out;
    const INodeRec* cur = resident_ptr(kRootId);
    out.chain.push_back(materialize(*cur));
    // Walk components by offset (not PathView) so a symlink splice can
    // recover the unconsumed suffix of the path.
    size_t i = 0;
    while (i < p.size()) {
        while (i < p.size() && p[i] == '/') {
            ++i;
        }
        size_t start = i;
        while (i < p.size() && p[i] != '/') {
            ++i;
        }
        if (i == start) {
            break;
        }
        std::string_view comp = p.substr(start, i - start);
        if (!cur->is_dir()) {
            return Status::not_found(describe("not a directory on path: ", p));
        }
        if (!rec_access(*cur, user, Access::kExecute)) {
            return Status::permission_denied("no traverse on " +
                                             full_path(cur->id));
        }
        INodeId child = kInvalidId;
        if (uint32_t name_id = names_.find(comp);
            name_id != NameTable::kNoName) {
            child = dir_table(*cur).find_exact(name_id);
        }
        if (child == kInvalidId) {
            return Status::not_found(describe("no such path: ", p));
        }
        const INodeRec* node = fetch(child);
        assert(node != nullptr);
        bool last = p.find_first_not_of('/', i) == std::string_view::npos;
        if (node->is_symlink() && (!last || follow_final)) {
            if (depth + 1 > kMaxSymlinkFollows) {
                return Status::failed_precondition(
                    describe("symlink loop (ELOOP): ", p));
            }
            // Splice: restart resolution at the link target with the
            // unconsumed suffix (which starts with '/' or is empty).
            std::string next(targets_.name(node->aux));
            next.append(p.substr(i));
            auto spliced = resolve_ex(next, user, follow_final, depth + 1);
            if (spliced.ok()) {
                spliced->via_symlink = true;
            }
            return spliced;
        }
        cur = node;
        out.chain.push_back(materialize(*node));
    }
    return out;
}

Status
NamespaceTree::resolve_ids(std::string_view p, const UserContext& user,
                           Follow follow, IdChain* out,
                           bool* via_symlink) const
{
    OpScope scope(this);
    if (via_symlink != nullptr) {
        *via_symlink = false;
    }
    return resolve_ids_ex(p, user, follow == Follow::kFinal, 0, out,
                          via_symlink);
}

Status
NamespaceTree::resolve_ids_ex(std::string_view p, const UserContext& user,
                              bool follow_final, int depth, IdChain* out,
                              bool* via_symlink) const
{
    if (!path::is_valid(p)) {
        return Status::invalid_argument(describe("bad path: ", p));
    }
    out->clear();
    const INodeRec* cur = resident_ptr(kRootId);
    out->push(kRootId);
    size_t i = 0;
    while (i < p.size()) {
        while (i < p.size() && p[i] == '/') {
            ++i;
        }
        size_t start = i;
        while (i < p.size() && p[i] != '/') {
            ++i;
        }
        if (i == start) {
            break;
        }
        std::string_view comp = p.substr(start, i - start);
        if (!cur->is_dir()) {
            return Status::not_found(describe("not a directory on path: ", p));
        }
        if (!rec_access(*cur, user, Access::kExecute)) {
            return Status::permission_denied("no traverse on " +
                                             full_path(cur->id));
        }
        INodeId child = kInvalidId;
        if (uint32_t name_id = names_.find(comp);
            name_id != NameTable::kNoName) {
            child = dir_table(*cur).find_exact(name_id);
        }
        if (child == kInvalidId) {
            return Status::not_found(describe("no such path: ", p));
        }
        const INodeRec* node = fetch(child);
        assert(node != nullptr);
        bool last = p.find_first_not_of('/', i) == std::string_view::npos;
        if (node->is_symlink() && (!last || follow_final)) {
            if (depth + 1 > kMaxSymlinkFollows) {
                return Status::failed_precondition(
                    describe("symlink loop (ELOOP): ", p));
            }
            std::string next(targets_.name(node->aux));
            next.append(p.substr(i));
            if (via_symlink != nullptr) {
                *via_symlink = true;
            }
            return resolve_ids_ex(next, user, follow_final, depth + 1, out,
                                  via_symlink);
        }
        cur = node;
        out->push(child);
    }
    return Status::make_ok();
}

StatusOr<INode>
NamespaceTree::stat(std::string_view p, const UserContext& user) const
{
    auto resolved = resolve(p, user, Follow::kNoFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    return resolved->target();
}

StatusOr<INode>
NamespaceTree::read_file(std::string_view p, const UserContext& user) const
{
    auto resolved = resolve(p, user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (!target.is_file()) {
        return Status::failed_precondition(describe("not a file: ", p));
    }
    if (!check_access(target, user, Access::kRead)) {
        return Status::permission_denied(describe("no read on ", p));
    }
    return target;
}

StatusOr<std::vector<std::string>>
NamespaceTree::list(std::string_view p, const UserContext& user) const
{
    auto resolved = resolve(p, user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (target.is_file()) {
        // ls on a file lists the file itself (HDFS semantics).
        return std::vector<std::string>{target.name};
    }
    if (!check_access(target, user, Access::kRead)) {
        return Status::permission_denied(describe("no read on ", p));
    }
    std::vector<std::string> names;
    const INodeRec* rec = resident_ptr(target.id);  // dirs are pinned
    if (rec != nullptr && rec->is_dir()) {
        const DirTable& tab = dir_table(*rec);
        names.reserve(tab.size());
        for (const DirTable::Slot& s : tab.slots()) {
            if (s.value != kInvalidId) {
                names.push_back(
                    names_.name(static_cast<uint32_t>(s.key)));
            }
        }
    }
    // The child table is hashed by interned id; listing stays sorted.
    std::sort(names.begin(), names.end());
    return names;
}

// ----------------------------------------------------------------------
// Mutations
// ----------------------------------------------------------------------

StatusOr<INodeRec*>
NamespaceTree::resolve_mutable_parent(std::string_view p,
                                      const UserContext& user)
{
    auto resolved = resolve(path::parent(p), user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    INodeRec* parent = fetch(resolved->target().id);
    assert(parent != nullptr);
    if (!parent->is_dir()) {
        return Status::failed_precondition(
            describe("parent not a directory: ", p));
    }
    if (!rec_access(*parent, user, Access::kWrite)) {
        return Status::permission_denied(
            describe("no write on parent of ", p));
    }
    return parent;
}

INodeRec&
NamespaceTree::add_node(INodeId parent, std::string_view name,
                        INodeType type, const UserContext& user,
                        sim::SimTime now)
{
    uint32_t slot = slab_.alloc();
    INodeRec& node = slab_.at(slot);
    node = INodeRec{};
    node.id = next_id_++;
    node.parent = parent;
    node.name_id = names_.intern(name);
    node.type = type;
    switch (type) {
      case INodeType::kDirectory:
        node.mode = 0755;
        node.aux = alloc_dir_table();
        ++dirs_;
        break;
      case INodeType::kFile:
        node.mode = 0644;
        ++files_;
        ++evictable_;
        ring_push(slot, node.id);
        break;
      case INodeType::kSymlink:
        node.mode = 0777;
        ++symlinks_;
        break;
    }
    node.owner = user.uid;
    node.group = user.gid;
    node.mtime = now;
    node.ctime = now;
    node.flags = INodeRec::kFlagReferenced;
    index_.insert(static_cast<uint64_t>(node.id), slot + 1);
    INodeRec* parent_rec = fetch(parent);
    assert(parent_rec != nullptr && parent_rec->is_dir());
    dir_table(*parent_rec).insert(node.name_id, node.id);
    parent_rec->mtime = now;
    ++parent_rec->version;
    meta_bytes_ += 96 + name.size();
    return node;
}

StatusOr<INode>
NamespaceTree::create_file(std::string_view p, const UserContext& user,
                           sim::SimTime now)
{
    OpScope scope(this);
    if (!path::is_valid(p) || p == "/") {
        return Status::invalid_argument(describe("bad path: ", p));
    }
    auto parent = resolve_mutable_parent(p, user);
    if (!parent.ok()) {
        return parent.status();
    }
    std::string_view name = path::basename_view(p);
    if (lookup_child((*parent)->id, name) != kInvalidId) {
        return Status::already_exists(describe("exists: ", p));
    }
    return materialize(
        add_node((*parent)->id, name, INodeType::kFile, user, now));
}

StatusOr<INode>
NamespaceTree::mkdirs(std::string_view p, const UserContext& user,
                      sim::SimTime now)
{
    OpScope scope(this);
    if (!path::is_valid(p)) {
        return Status::invalid_argument(describe("bad path: ", p));
    }
    const INodeRec* cur = resident_ptr(kRootId);
    for (std::string_view comp : path::PathView(p)) {
        if (!cur->is_dir()) {
            return Status::failed_precondition(describe("file on path: ", p));
        }
        if (!rec_access(*cur, user, Access::kExecute)) {
            return Status::permission_denied("no traverse on " +
                                             full_path(cur->id));
        }
        INodeId child = lookup_child(cur->id, comp);
        if (child == kInvalidId) {
            if (!rec_access(*cur, user, Access::kWrite)) {
                return Status::permission_denied("no write on " +
                                                 full_path(cur->id));
            }
            cur = &add_node(cur->id, comp, INodeType::kDirectory, user, now);
        } else {
            cur = fetch(child);
        }
    }
    if (!cur->is_dir()) {
        return Status::already_exists(describe("file exists: ", p));
    }
    return materialize(*cur);
}

// ----------------------------------------------------------------------
// Bulk loading
// ----------------------------------------------------------------------

void
NamespaceTree::bulk_reserve(size_t additional)
{
    size_t cap = additional;
    if (budget_bytes_ != SIZE_MAX) {
        // Under a sub-resident budget most of the load pages out as it
        // lands: sizing the slab and id index for the full load would
        // bake an unreachable resident footprint into capacity_bytes().
        // Directories are pinned and their share is unknown, so both
        // structures still grow incrementally past this cap whenever the
        // unevictable floor itself exceeds the budget.
        size_t resident_cap = budget_bytes_ / sizeof(INodeRec) + 1024;
        cap = std::min(additional, resident_cap);
    }
    slab_.reserve(cap);
    index_.reserve(slab_.live() + cap);
}

INodeId
NamespaceTree::bulk_add(INodeId parent, std::string_view name,
                        INodeType type, const UserContext& user,
                        sim::SimTime now)
{
    OpScope scope(this);
    assert(resident_ptr(parent) != nullptr &&
           resident_ptr(parent)->is_dir());
    assert(lookup_child(parent, name) == kInvalidId);
    return add_node(parent, name, type, user, now).id;
}

// ----------------------------------------------------------------------
// Deletion
// ----------------------------------------------------------------------

int32_t
NamespaceTree::open_count(INodeId id) const
{
    auto it = open_counts_.find(id);
    return it == open_counts_.end() ? 0 : it->second;
}

void
NamespaceTree::drop_link_record(INodeId id, INodeId parent, uint32_t name)
{
    auto it = links_.find(id);
    if (it == links_.end()) {
        return;
    }
    auto& refs = it->second;
    for (size_t i = 0; i < refs.size(); ++i) {
        if (refs[i].parent == parent && refs[i].name == name) {
            refs.erase(refs.begin() + static_cast<ptrdiff_t>(i));
            break;
        }
    }
    INodeRec* node = resident_ptr(id);
    assert(node != nullptr);  // reap pages multi-link files in
    bool dropped_primary = node->parent == parent && node->name_id == name;
    if (dropped_primary && !refs.empty()) {
        meta_bytes_ += names_.name(refs.front().name).size();
        meta_bytes_ -= names_.name(node->name_id).size();
        node->parent = refs.front().parent;
        node->name_id = refs.front().name;
    }
    // One entry left: INodeRec::parent/name_id describe it fully again.
    if (refs.size() <= 1) {
        links_.erase(it);
    }
}

void
NamespaceTree::reap(INodeId id, INodeId via_parent, uint32_t via_name,
                    int64_t* removed, sim::SimTime now)
{
    uint64_t v = index_.find_exact(static_cast<uint64_t>(id));
    if (v == 0) {
        // Only file inodes page out. A cold single-link file with no
        // open sessions drops straight from the cold tier — the common
        // bulk-delete case pays no page-in.
        INodeRec rec;
        bool found = cold_.get(id, &rec);
        assert(found);
        (void)found;
        if (rec.nlink <= 1 && open_count(id) == 0) {
            cold_.erase(id);
            --cold_count_;
            --files_;
            meta_bytes_ -= 96 + names_.name(rec.name_id).size();
            ++*removed;
            return;
        }
        fetch(id);
        v = index_.find_exact(static_cast<uint64_t>(id));
    }
    uint32_t slot = static_cast<uint32_t>(v - 1);
    INodeRec& node = slab_.at(slot);
    if (node.is_dir()) {
        DirTable& tab = dir_table(node);
        // Copy entries: removal mutates the child table.
        std::vector<std::pair<uint32_t, INodeId>> kids;
        kids.reserve(tab.size());
        for (const DirTable::Slot& s : tab.slots()) {
            if (s.value != kInvalidId) {
                kids.emplace_back(static_cast<uint32_t>(s.key), s.value);
            }
        }
        for (const auto& [name_id, cid] : kids) {
            reap(cid, id, name_id, removed, now);
        }
        free_dir_table(node.aux);
        meta_bytes_ -= 96 + name_of(node).size();
        index_.erase_key(static_cast<uint64_t>(id));
        slab_.free_slot(slot);
        --dirs_;
        ++*removed;
        return;
    }
    if (node.is_symlink()) {
        meta_bytes_ -=
            96 + name_of(node).size() + targets_.name(node.aux).size();
        index_.erase_key(static_cast<uint64_t>(id));
        slab_.free_slot(slot);
        --symlinks_;
        ++*removed;
        return;
    }
    drop_link_record(id, via_parent, via_name);
    if (node.nlink > 1) {
        // Another directory entry still references the inode.
        --node.nlink;
        node.ctime = now;
        ++node.version;
        ++*removed;
        return;
    }
    if (open_count(id) > 0) {
        // Unlinked-but-open: orphan until the last session releases it.
        node.parent = kInvalidId;
        node.nlink = 0;
        node.ctime = now;
        ++node.version;
        orphans_.insert(id);
        ++*removed;
        return;
    }
    meta_bytes_ -= 96 + name_of(node).size();
    index_.erase_key(static_cast<uint64_t>(id));
    slab_.free_slot(slot);
    --files_;
    --evictable_;
    ++*removed;
}

void
NamespaceTree::reclaim_inode(INodeId id)
{
    if (uint64_t v = index_.find_exact(static_cast<uint64_t>(id)); v != 0) {
        uint32_t slot = static_cast<uint32_t>(v - 1);
        INodeRec& rec = slab_.at(slot);
        meta_bytes_ -= 96 + name_of(rec).size();
        index_.erase_key(static_cast<uint64_t>(id));
        slab_.free_slot(slot);
        --evictable_;
    } else {
        INodeRec rec;
        bool found = cold_.get(id, &rec);
        assert(found);
        (void)found;
        meta_bytes_ -= 96 + names_.name(rec.name_id).size();
        cold_.erase(id);
        --cold_count_;
    }
    --files_;
}

StatusOr<int64_t>
NamespaceTree::remove(std::string_view p, const UserContext& user,
                      bool recursive, sim::SimTime now)
{
    OpScope scope(this);
    if (p == "/") {
        return Status::invalid_argument("cannot delete root");
    }
    // No-follow: deleting a symlink removes the link, not its target.
    auto resolved = resolve(p, user, Follow::kNoFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    // The entry being removed is (traversed dir, final component): with
    // hard links the inode's primary parent/name may be a different
    // entry; with intermediate symlinks the traversed dir may differ
    // from a textual parent(p).
    INodeId parent_id = resolved->chain[resolved->chain.size() - 2].id;
    INodeRec* parent = fetch(parent_id);
    assert(parent != nullptr);
    if (!rec_access(*parent, user, Access::kWrite)) {
        return Status::permission_denied(
            describe("no write on parent of ", p));
    }
    if (target.is_dir() && !recursive) {
        const INodeRec* target_rec = resident_ptr(target.id);
        if (!dir_table(*target_rec).empty()) {
            return Status::failed_precondition(
                describe("directory not empty: ", p));
        }
    }
    uint32_t name_id = names_.find(path::basename_view(p));
    int64_t removed = 0;
    dir_table(*parent).erase_key(name_id);
    reap(target.id, parent_id, name_id, &removed, now);
    parent->mtime = now;
    ++parent->version;
    return removed;
}

bool
NamespaceTree::is_ancestor(INodeId maybe_ancestor, INodeId node) const
{
    for (INodeId cur = node; cur != kInvalidId;) {
        if (cur == maybe_ancestor) {
            return true;
        }
        INodeRec rec;
        cur = read_any(cur, &rec) ? rec.parent : kInvalidId;
    }
    return false;
}

Status
NamespaceTree::rename(std::string_view src, std::string_view dst,
                      const UserContext& user, sim::SimTime now)
{
    OpScope scope(this);
    if (src == "/" || !path::is_valid(src) || !path::is_valid(dst)) {
        return Status::invalid_argument("bad rename: " + std::string(src) +
                                        " -> " + std::string(dst));
    }
    // No-follow: renaming a symlink moves the link itself.
    auto resolved = resolve(src, user, Follow::kNoFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (path::is_under(dst, src)) {
        return Status::invalid_argument("cannot move under itself");
    }
    auto dst_parent_resolved = resolve(path::parent(dst), user);
    if (!dst_parent_resolved.ok()) {
        return dst_parent_resolved.status();
    }
    INodeId dst_parent_id = dst_parent_resolved->target().id;
    INodeRec* dst_parent = fetch(dst_parent_id);
    assert(dst_parent != nullptr);
    if (!dst_parent->is_dir()) {
        return Status::failed_precondition("destination parent not a dir");
    }
    std::string_view dst_name = path::basename_view(dst);
    if (lookup_child(dst_parent_id, dst_name) != kInvalidId) {
        return Status::already_exists(describe("destination exists: ", dst));
    }
    // The entry being moved is (traversed dir, final component of src) —
    // see remove() for why this may differ from the inode's primary.
    INodeId src_parent_id = resolved->chain[resolved->chain.size() - 2].id;
    uint32_t src_name_id = names_.find(path::basename_view(src));
    INodeRec* src_parent = fetch(src_parent_id);
    assert(src_parent != nullptr);
    if (!rec_access(*src_parent, user, Access::kWrite) ||
        !rec_access(*dst_parent, user, Access::kWrite)) {
        return Status::permission_denied("no write for rename");
    }
    if (is_ancestor(target.id, dst_parent_id)) {
        return Status::invalid_argument("cannot move under itself");
    }

    dir_table(*src_parent).erase_key(src_name_id);
    src_parent->mtime = now;
    ++src_parent->version;
    INodeRec* node = fetch(target.id);  // resident: resolve paged it in
    assert(node != nullptr);
    uint32_t dst_name_id = names_.intern(dst_name);
    dir_table(*dst_parent).insert(dst_name_id, node->id);
    auto lit = links_.find(node->id);
    if (lit != links_.end()) {
        for (LinkRef& ref : lit->second) {
            if (ref.parent == src_parent_id && ref.name == src_name_id) {
                ref = {dst_parent_id, dst_name_id};
                break;
            }
        }
    }
    // Re-point the primary unless a *secondary* link of a multi-link
    // file moved (the primary entry still exists unchanged).
    bool was_primary =
        node->parent == src_parent_id && node->name_id == src_name_id;
    if (was_primary || lit == links_.end()) {
        meta_bytes_ += dst_name.size();
        meta_bytes_ -= names_.name(node->name_id).size();
        node->parent = dst_parent_id;
        node->name_id = dst_name_id;
    }
    node->mtime = now;
    ++node->version;
    dst_parent->mtime = now;
    ++dst_parent->version;
    return Status::make_ok();
}

StatusOr<INode>
NamespaceTree::link(std::string_view src, std::string_view dst,
                    const UserContext& user, sim::SimTime now)
{
    OpScope scope(this);
    if (!path::is_valid(src) || !path::is_valid(dst) || src == "/" ||
        dst == "/") {
        return Status::invalid_argument("bad link: " + std::string(src) +
                                        " -> " + std::string(dst));
    }
    // No-follow: link(symlink, ...) would alias the link object itself,
    // which we reject below (files only, as HDFS/3FS do).
    auto resolved = resolve(src, user, Follow::kNoFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (!target.is_file()) {
        return Status::failed_precondition(
            describe("hard link target not a file: ", src));
    }
    auto parent = resolve_mutable_parent(dst, user);
    if (!parent.ok()) {
        return parent.status();
    }
    std::string_view name = path::basename_view(dst);
    if (lookup_child((*parent)->id, name) != kInvalidId) {
        return Status::already_exists(describe("exists: ", dst));
    }
    INodeRec* node = fetch(target.id);  // resident: resolve paged it in
    assert(node != nullptr);
    uint32_t name_id = names_.intern(name);
    auto& refs = links_[node->id];
    if (refs.empty()) {
        // First extra link: register the primary entry too.
        refs.push_back({node->parent, node->name_id});
    }
    refs.push_back({(*parent)->id, name_id});
    dir_table(**parent).insert(name_id, node->id);
    ++node->nlink;
    node->ctime = now;
    ++node->version;
    (*parent)->mtime = now;
    ++(*parent)->version;
    return materialize(*node);
}

StatusOr<INode>
NamespaceTree::symlink(std::string_view link_path, std::string_view target,
                       const UserContext& user, sim::SimTime now)
{
    OpScope scope(this);
    if (!path::is_valid(link_path) || link_path == "/") {
        return Status::invalid_argument(describe("bad path: ", link_path));
    }
    if (!path::is_valid(target)) {
        return Status::invalid_argument(
            describe("symlink target must be an absolute path: ", target));
    }
    auto parent = resolve_mutable_parent(link_path, user);
    if (!parent.ok()) {
        return parent.status();
    }
    std::string_view name = path::basename_view(link_path);
    if (lookup_child((*parent)->id, name) != kInvalidId) {
        return Status::already_exists(describe("exists: ", link_path));
    }
    INodeRec& node =
        add_node((*parent)->id, name, INodeType::kSymlink, user, now);
    std::string normalized = path::normalize(target);
    node.aux = targets_.intern(normalized);
    meta_bytes_ += normalized.size();
    return materialize(node);
}

StatusOr<INode>
NamespaceTree::setattr(std::string_view p, const AttrUpdate& update,
                       const UserContext& user, sim::SimTime now)
{
    OpScope scope(this);
    auto resolved = resolve(p, user, Follow::kFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    INodeRec* node = fetch(resolved->target().id);
    assert(node != nullptr);
    if (!user.is_superuser() && user.uid != node->owner) {
        return Status::permission_denied(describe("not the owner of ", p));
    }
    if ((update.mask & (AttrUpdate::kOwner | AttrUpdate::kGroup)) != 0 &&
        !user.is_superuser()) {
        return Status::permission_denied("only the superuser may chown");
    }
    if ((update.mask & AttrUpdate::kMode) != 0) {
        node->mode = update.mode;
    }
    if ((update.mask & AttrUpdate::kOwner) != 0) {
        node->owner = update.owner;
    }
    if ((update.mask & AttrUpdate::kGroup) != 0) {
        node->group = update.group;
    }
    if ((update.mask & AttrUpdate::kTimes) != 0) {
        node->mtime = update.mtime;
    }
    node->ctime = now;
    ++node->version;
    return materialize(*node);
}

// ----------------------------------------------------------------------
// Sessions, orphans, GC
// ----------------------------------------------------------------------

StatusOr<INode>
NamespaceTree::open_session(std::string_view p, uint64_t session_id,
                            sim::SimTime expiry, const UserContext& user)
{
    OpScope scope(this);
    if (sessions_.find(session_id) != sessions_.end()) {
        return Status::already_exists("session already open: " +
                                      std::to_string(session_id));
    }
    auto resolved = resolve(p, user, Follow::kFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (!target.is_file()) {
        return Status::failed_precondition(describe("not a file: ", p));
    }
    if (!check_access(target, user, Access::kRead)) {
        return Status::permission_denied(describe("no read on ", p));
    }
    sessions_[session_id] = {session_id, target.id, expiry};
    ++open_counts_[target.id];
    return target;
}

StatusOr<int64_t>
NamespaceTree::close_session(uint64_t session_id, sim::SimTime now)
{
    OpScope scope(this);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
        return Status::not_found("no such session: " +
                                 std::to_string(session_id));
    }
    INodeId id = it->second.inode;
    sessions_.erase(it);
    auto oc = open_counts_.find(id);
    if (oc != open_counts_.end() && --oc->second <= 0) {
        open_counts_.erase(oc);
        if (orphans_.erase(id) > 0) {
            // Last holder of an unlinked inode: reclaim it now.
            reclaim_inode(id);
            (void)now;
            return 1;
        }
    }
    return 0;
}

NamespaceTree::GcResult
NamespaceTree::gc_prune(sim::SimTime now)
{
    OpScope scope(this);
    GcResult out;
    // Sorted sweep so reclaim order is independent of hash-map layout.
    std::vector<uint64_t> expired;
    for (const auto& [sid, session] : sessions_) {
        if (session.expiry <= now) {
            expired.push_back(sid);
        }
    }
    std::sort(expired.begin(), expired.end());
    for (uint64_t sid : expired) {
        auto closed = close_session(sid, now);
        ++out.expired_sessions;
        out.reclaimed += closed.ok() ? *closed : 0;
    }
    // Crashed-session leftovers: orphans nothing holds open any more.
    for (auto it = orphans_.begin(); it != orphans_.end();) {
        if (open_count(*it) == 0) {
            reclaim_inode(*it);
            ++out.reclaimed;
            it = orphans_.erase(it);
        } else {
            ++it;
        }
    }
    return out;
}

FsStats
NamespaceTree::statfs() const
{
    FsStats stats;
    stats.inodes = static_cast<int64_t>(inode_count());
    stats.files = files_;
    stats.dirs = dirs_;
    stats.symlinks = symlinks_;
    stats.open_sessions = static_cast<int64_t>(sessions_.size());
    stats.orphans = static_cast<int64_t>(orphans_.size());
    stats.metadata_bytes = static_cast<int64_t>(meta_bytes_);
    return stats;
}

std::vector<INodeId>
NamespaceTree::orphan_ids() const
{
    return {orphans_.begin(), orphans_.end()};
}

std::vector<NamespaceTree::SessionView>
NamespaceTree::sessions() const
{
    std::vector<SessionView> out;
    out.reserve(sessions_.size());
    for (const auto& [sid, session] : sessions_) {
        out.push_back(session);
    }
    std::sort(out.begin(), out.end(),
              [](const SessionView& a, const SessionView& b) {
                  return a.id < b.id;
              });
    return out;
}

// ----------------------------------------------------------------------
// Introspection
// ----------------------------------------------------------------------

const INode*
NamespaceTree::get(INodeId id) const
{
    INodeRec rec;
    if (!read_any(id, &rec)) {
        return nullptr;
    }
    INode& view = scratch_[scratch_next_++ % scratch_.size()];
    view = materialize(rec);
    return &view;
}

INodeId
NamespaceTree::lookup_child(INodeId parent, std::string_view name) const
{
    // Unseen name: no directory anywhere contains it.
    uint32_t name_id = names_.find(name);
    if (name_id == NameTable::kNoName) {
        return kInvalidId;
    }
    const INodeRec* rec = resident_ptr(parent);
    if (rec == nullptr || !rec->is_dir()) {
        return kInvalidId;
    }
    return dir_table(*rec).find_exact(name_id);
}

std::vector<INodeId>
NamespaceTree::children(INodeId dir) const
{
    std::vector<std::pair<std::string_view, INodeId>> named;
    const INodeRec* rec = resident_ptr(dir);
    if (rec != nullptr && rec->is_dir()) {
        const DirTable& tab = dir_table(*rec);
        named.reserve(tab.size());
        for (const DirTable::Slot& s : tab.slots()) {
            if (s.value != kInvalidId) {
                named.emplace_back(
                    names_.name(static_cast<uint32_t>(s.key)), s.value);
            }
        }
    }
    // By-name order, matching the sorted child maps this replaced.
    std::sort(named.begin(), named.end());
    std::vector<INodeId> out;
    out.reserve(named.size());
    for (const auto& [name, id] : named) {
        out.push_back(id);
    }
    return out;
}

StatusOr<int64_t>
NamespaceTree::subtree_size(std::string_view p, const UserContext& user) const
{
    // No-follow, matching remove/rename: subtree ops act on the entry
    // itself, so sizing a final symlink must count the link (1 row),
    // not the target's subtree — and must not fail on a dangling link.
    auto resolved = resolve(p, user, Follow::kNoFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    int64_t count = 0;
    std::vector<INodeId> stack{resolved->target().id};
    while (!stack.empty()) {
        INodeId id = stack.back();
        stack.pop_back();
        ++count;
        for (INodeId c : children(id)) {
            stack.push_back(c);
        }
    }
    return count;
}

std::string
NamespaceTree::full_path(INodeId id) const
{
    if (id == kRootId) {
        return "/";
    }
    std::vector<uint32_t> comps;
    for (INodeId cur = id; cur != kInvalidId && cur != kRootId;) {
        INodeRec rec;
        if (!read_any(cur, &rec)) {
            return "";
        }
        comps.push_back(rec.name_id);
        cur = rec.parent;
    }
    std::string out;
    for (auto it = comps.rbegin(); it != comps.rend(); ++it) {
        out += '/';
        out += names_.name(*it);
    }
    return out;
}

}  // namespace lfs::ns
