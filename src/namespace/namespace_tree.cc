#include "src/namespace/namespace_tree.h"

#include <algorithm>
#include <cassert>

#include "src/util/path.h"

namespace lfs::ns {

namespace {

std::string
describe(std::string_view what, std::string_view p)
{
    std::string out(what);
    out += p;
    return out;
}

}  // namespace

NamespaceTree::NamespaceTree()
{
    INode root;
    root.id = kRootId;
    root.parent = kInvalidId;
    root.name = "";
    root.type = INodeType::kDirectory;
    root.perms.mode = 0777;
    nodes_[kRootId] = root;
    children_[kRootId] = {};
}

StatusOr<ResolvedPath>
NamespaceTree::resolve(std::string_view p, const UserContext& user) const
{
    if (!path::is_valid(p)) {
        return Status::invalid_argument(describe("bad path: ", p));
    }
    ResolvedPath out;
    const INode* cur = &nodes_.at(kRootId);
    out.chain.push_back(*cur);
    for (std::string_view comp : path::PathView(p)) {
        if (!cur->is_dir()) {
            return Status::not_found(describe("not a directory on path: ", p));
        }
        if (!check_access(*cur, user, Access::kExecute)) {
            return Status::permission_denied("no traverse on " +
                                             full_path(cur->id));
        }
        INodeId child = lookup_child(cur->id, comp);
        if (child == kInvalidId) {
            return Status::not_found(describe("no such path: ", p));
        }
        cur = &nodes_.at(child);
        out.chain.push_back(*cur);
    }
    return out;
}

StatusOr<INode>
NamespaceTree::stat(std::string_view p, const UserContext& user) const
{
    auto resolved = resolve(p, user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    return resolved->target();
}

StatusOr<INode>
NamespaceTree::read_file(std::string_view p, const UserContext& user) const
{
    auto resolved = resolve(p, user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (!target.is_file()) {
        return Status::failed_precondition(describe("not a file: ", p));
    }
    if (!check_access(target, user, Access::kRead)) {
        return Status::permission_denied(describe("no read on ", p));
    }
    return target;
}

StatusOr<std::vector<std::string>>
NamespaceTree::list(std::string_view p, const UserContext& user) const
{
    auto resolved = resolve(p, user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (target.is_file()) {
        // ls on a file lists the file itself (HDFS semantics).
        return std::vector<std::string>{target.name};
    }
    if (!check_access(target, user, Access::kRead)) {
        return Status::permission_denied(describe("no read on ", p));
    }
    std::vector<std::string> names;
    auto it = children_.find(target.id);
    if (it != children_.end()) {
        names.reserve(it->second.size());
        for (const auto& [name_id, id] : it->second) {
            names.push_back(names_.name(name_id));
        }
    }
    // The child map is hashed by interned id; listing stays sorted.
    std::sort(names.begin(), names.end());
    return names;
}

StatusOr<INode*>
NamespaceTree::resolve_mutable_parent(std::string_view p,
                                      const UserContext& user)
{
    auto resolved = resolve(path::parent(p), user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    INode* parent = &nodes_.at(resolved->target().id);
    if (!parent->is_dir()) {
        return Status::failed_precondition(
            describe("parent not a directory: ", p));
    }
    if (!check_access(*parent, user, Access::kWrite)) {
        return Status::permission_denied(
            describe("no write on parent of ", p));
    }
    return parent;
}

INode&
NamespaceTree::add_node(INodeId parent, std::string_view name, INodeType type,
                        const UserContext& user, sim::SimTime now)
{
    INode node;
    node.id = next_id_++;
    node.parent = parent;
    node.name = std::string(name);
    node.type = type;
    node.perms.mode = type == INodeType::kDirectory ? 0755 : 0644;
    node.perms.owner = user.uid;
    node.perms.group = user.gid;
    node.mtime = now;
    node.ctime = now;
    children_[parent][names_.intern(name)] = node.id;
    if (type == INodeType::kDirectory) {
        children_[node.id] = {};
    }
    INode& parent_node = nodes_.at(parent);
    parent_node.mtime = now;
    ++parent_node.version;
    auto [it, inserted] = nodes_.emplace(node.id, std::move(node));
    assert(inserted);
    return it->second;
}

StatusOr<INode>
NamespaceTree::create_file(std::string_view p, const UserContext& user,
                           sim::SimTime now)
{
    if (!path::is_valid(p) || p == "/") {
        return Status::invalid_argument(describe("bad path: ", p));
    }
    auto parent = resolve_mutable_parent(p, user);
    if (!parent.ok()) {
        return parent.status();
    }
    std::string_view name = path::basename_view(p);
    if (lookup_child((*parent)->id, name) != kInvalidId) {
        return Status::already_exists(describe("exists: ", p));
    }
    return add_node((*parent)->id, name, INodeType::kFile, user, now);
}

StatusOr<INode>
NamespaceTree::mkdirs(std::string_view p, const UserContext& user,
                      sim::SimTime now)
{
    if (!path::is_valid(p)) {
        return Status::invalid_argument(describe("bad path: ", p));
    }
    INode* cur = &nodes_.at(kRootId);
    for (std::string_view comp : path::PathView(p)) {
        if (!cur->is_dir()) {
            return Status::failed_precondition(describe("file on path: ", p));
        }
        if (!check_access(*cur, user, Access::kExecute)) {
            return Status::permission_denied("no traverse on " +
                                             full_path(cur->id));
        }
        INodeId child = lookup_child(cur->id, comp);
        if (child == kInvalidId) {
            if (!check_access(*cur, user, Access::kWrite)) {
                return Status::permission_denied("no write on " +
                                                 full_path(cur->id));
            }
            INode& made =
                add_node(cur->id, comp, INodeType::kDirectory, user, now);
            cur = &made;
        } else {
            cur = &nodes_.at(child);
        }
    }
    if (!cur->is_dir()) {
        return Status::already_exists(describe("file exists: ", p));
    }
    return *cur;
}

void
NamespaceTree::remove_subtree(INodeId id, int64_t* removed)
{
    auto it = children_.find(id);
    if (it != children_.end()) {
        // Copy ids: removal mutates the child map.
        std::vector<INodeId> kids;
        kids.reserve(it->second.size());
        for (const auto& [name_id, cid] : it->second) {
            kids.push_back(cid);
        }
        for (INodeId cid : kids) {
            remove_subtree(cid, removed);
        }
        children_.erase(id);
    }
    nodes_.erase(id);
    ++*removed;
}

StatusOr<int64_t>
NamespaceTree::remove(std::string_view p, const UserContext& user,
                      bool recursive, sim::SimTime now)
{
    if (p == "/") {
        return Status::invalid_argument("cannot delete root");
    }
    auto resolved = resolve(p, user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    INode target = resolved->target();
    INode& parent = nodes_.at(target.parent);
    if (!check_access(parent, user, Access::kWrite)) {
        return Status::permission_denied(
            describe("no write on parent of ", p));
    }
    if (target.is_dir() && !recursive && !children_[target.id].empty()) {
        return Status::failed_precondition(
            describe("directory not empty: ", p));
    }
    int64_t removed = 0;
    remove_subtree(target.id, &removed);
    children_[parent.id].erase(names_.find(target.name));
    parent.mtime = now;
    ++parent.version;
    return removed;
}

bool
NamespaceTree::is_ancestor(INodeId maybe_ancestor, INodeId node) const
{
    for (INodeId cur = node; cur != kInvalidId;) {
        if (cur == maybe_ancestor) {
            return true;
        }
        auto it = nodes_.find(cur);
        cur = it == nodes_.end() ? kInvalidId : it->second.parent;
    }
    return false;
}

Status
NamespaceTree::rename(std::string_view src, std::string_view dst,
                      const UserContext& user, sim::SimTime now)
{
    if (src == "/" || !path::is_valid(src) || !path::is_valid(dst)) {
        return Status::invalid_argument("bad rename: " + std::string(src) +
                                        " -> " + std::string(dst));
    }
    auto resolved = resolve(src, user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    INode target = resolved->target();
    if (path::is_under(dst, src)) {
        return Status::invalid_argument("cannot move under itself");
    }
    auto dst_parent_resolved = resolve(path::parent(dst), user);
    if (!dst_parent_resolved.ok()) {
        return dst_parent_resolved.status();
    }
    INodeId dst_parent_id = dst_parent_resolved->target().id;
    if (!nodes_.at(dst_parent_id).is_dir()) {
        return Status::failed_precondition("destination parent not a dir");
    }
    std::string_view dst_name = path::basename_view(dst);
    if (lookup_child(dst_parent_id, dst_name) != kInvalidId) {
        return Status::already_exists(describe("destination exists: ", dst));
    }
    INode& src_parent = nodes_.at(target.parent);
    INode& dst_parent = nodes_.at(dst_parent_id);
    if (!check_access(src_parent, user, Access::kWrite) ||
        !check_access(dst_parent, user, Access::kWrite)) {
        return Status::permission_denied("no write for rename");
    }
    if (is_ancestor(target.id, dst_parent_id)) {
        return Status::invalid_argument("cannot move under itself");
    }

    children_[src_parent.id].erase(names_.find(target.name));
    src_parent.mtime = now;
    ++src_parent.version;
    INode& node = nodes_.at(target.id);
    node.parent = dst_parent_id;
    node.name = std::string(dst_name);
    node.mtime = now;
    ++node.version;
    children_[dst_parent_id][names_.intern(dst_name)] = node.id;
    dst_parent.mtime = now;
    ++dst_parent.version;
    return Status::make_ok();
}

const INode*
NamespaceTree::get(INodeId id) const
{
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
}

INodeId
NamespaceTree::lookup_child(INodeId parent, std::string_view name) const
{
    // Unseen name: no directory anywhere contains it.
    uint32_t name_id = names_.find(name);
    if (name_id == NameTable::kNoName) {
        return kInvalidId;
    }
    auto it = children_.find(parent);
    if (it == children_.end()) {
        return kInvalidId;
    }
    auto cit = it->second.find(name_id);
    return cit == it->second.end() ? kInvalidId : cit->second;
}

std::vector<INodeId>
NamespaceTree::children(INodeId dir) const
{
    std::vector<std::pair<std::string_view, INodeId>> named;
    auto it = children_.find(dir);
    if (it != children_.end()) {
        named.reserve(it->second.size());
        for (const auto& [name_id, id] : it->second) {
            named.emplace_back(names_.name(name_id), id);
        }
    }
    // By-name order, matching the sorted child maps this replaced.
    std::sort(named.begin(), named.end());
    std::vector<INodeId> out;
    out.reserve(named.size());
    for (const auto& [name, id] : named) {
        out.push_back(id);
    }
    return out;
}

StatusOr<int64_t>
NamespaceTree::subtree_size(std::string_view p, const UserContext& user) const
{
    auto resolved = resolve(p, user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    int64_t count = 0;
    std::vector<INodeId> stack{resolved->target().id};
    while (!stack.empty()) {
        INodeId id = stack.back();
        stack.pop_back();
        ++count;
        for (INodeId c : children(id)) {
            stack.push_back(c);
        }
    }
    return count;
}

std::string
NamespaceTree::full_path(INodeId id) const
{
    if (id == kRootId) {
        return "/";
    }
    std::vector<const INode*> chain;
    for (INodeId cur = id; cur != kInvalidId && cur != kRootId;) {
        auto it = nodes_.find(cur);
        if (it == nodes_.end()) {
            return "";
        }
        chain.push_back(&it->second);
        cur = it->second.parent;
    }
    std::string out;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        out += '/';
        out += (*it)->name;
    }
    return out;
}

size_t
NamespaceTree::total_metadata_bytes() const
{
    size_t total = 0;
    for (const auto& [id, node] : nodes_) {
        total += node.metadata_bytes();
    }
    return total;
}

}  // namespace lfs::ns
