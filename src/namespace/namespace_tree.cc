#include "src/namespace/namespace_tree.h"

#include <algorithm>
#include <cassert>

#include "src/util/path.h"

namespace lfs::ns {

namespace {

std::string
describe(std::string_view what, std::string_view p)
{
    std::string out(what);
    out += p;
    return out;
}

}  // namespace

NamespaceTree::NamespaceTree()
{
    INode root;
    root.id = kRootId;
    root.parent = kInvalidId;
    root.name = "";
    root.type = INodeType::kDirectory;
    root.perms.mode = 0777;
    nodes_[kRootId] = root;
    children_[kRootId] = {};
}

StatusOr<ResolvedPath>
NamespaceTree::resolve(std::string_view p, const UserContext& user,
                       Follow follow) const
{
    return resolve_ex(p, user, follow == Follow::kFinal, 0);
}

StatusOr<ResolvedPath>
NamespaceTree::resolve_ex(std::string_view p, const UserContext& user,
                          bool follow_final, int depth) const
{
    if (!path::is_valid(p)) {
        return Status::invalid_argument(describe("bad path: ", p));
    }
    ResolvedPath out;
    const INode* cur = &nodes_.at(kRootId);
    out.chain.push_back(*cur);
    // Walk components by offset (not PathView) so a symlink splice can
    // recover the unconsumed suffix of the path.
    size_t i = 0;
    while (i < p.size()) {
        while (i < p.size() && p[i] == '/') {
            ++i;
        }
        size_t start = i;
        while (i < p.size() && p[i] != '/') {
            ++i;
        }
        if (i == start) {
            break;
        }
        std::string_view comp = p.substr(start, i - start);
        if (!cur->is_dir()) {
            return Status::not_found(describe("not a directory on path: ", p));
        }
        if (!check_access(*cur, user, Access::kExecute)) {
            return Status::permission_denied("no traverse on " +
                                             full_path(cur->id));
        }
        INodeId child = lookup_child(cur->id, comp);
        if (child == kInvalidId) {
            return Status::not_found(describe("no such path: ", p));
        }
        const INode& node = nodes_.at(child);
        bool last = p.find_first_not_of('/', i) == std::string_view::npos;
        if (node.is_symlink() && (!last || follow_final)) {
            if (depth + 1 > kMaxSymlinkFollows) {
                return Status::failed_precondition(
                    describe("symlink loop (ELOOP): ", p));
            }
            // Splice: restart resolution at the link target with the
            // unconsumed suffix (which starts with '/' or is empty).
            std::string next(node.symlink_target);
            next.append(p.substr(i));
            auto spliced = resolve_ex(next, user, follow_final, depth + 1);
            if (spliced.ok()) {
                spliced->via_symlink = true;
            }
            return spliced;
        }
        cur = &node;
        out.chain.push_back(*cur);
    }
    return out;
}

StatusOr<INode>
NamespaceTree::stat(std::string_view p, const UserContext& user) const
{
    auto resolved = resolve(p, user, Follow::kNoFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    return resolved->target();
}

StatusOr<INode>
NamespaceTree::read_file(std::string_view p, const UserContext& user) const
{
    auto resolved = resolve(p, user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (!target.is_file()) {
        return Status::failed_precondition(describe("not a file: ", p));
    }
    if (!check_access(target, user, Access::kRead)) {
        return Status::permission_denied(describe("no read on ", p));
    }
    return target;
}

StatusOr<std::vector<std::string>>
NamespaceTree::list(std::string_view p, const UserContext& user) const
{
    auto resolved = resolve(p, user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (target.is_file()) {
        // ls on a file lists the file itself (HDFS semantics).
        return std::vector<std::string>{target.name};
    }
    if (!check_access(target, user, Access::kRead)) {
        return Status::permission_denied(describe("no read on ", p));
    }
    std::vector<std::string> names;
    auto it = children_.find(target.id);
    if (it != children_.end()) {
        names.reserve(it->second.size());
        for (const auto& [name_id, id] : it->second) {
            names.push_back(names_.name(name_id));
        }
    }
    // The child map is hashed by interned id; listing stays sorted.
    std::sort(names.begin(), names.end());
    return names;
}

StatusOr<INode*>
NamespaceTree::resolve_mutable_parent(std::string_view p,
                                      const UserContext& user)
{
    auto resolved = resolve(path::parent(p), user);
    if (!resolved.ok()) {
        return resolved.status();
    }
    INode* parent = &nodes_.at(resolved->target().id);
    if (!parent->is_dir()) {
        return Status::failed_precondition(
            describe("parent not a directory: ", p));
    }
    if (!check_access(*parent, user, Access::kWrite)) {
        return Status::permission_denied(
            describe("no write on parent of ", p));
    }
    return parent;
}

INode&
NamespaceTree::add_node(INodeId parent, std::string_view name, INodeType type,
                        const UserContext& user, sim::SimTime now)
{
    INode node;
    node.id = next_id_++;
    node.parent = parent;
    node.name = std::string(name);
    node.type = type;
    switch (type) {
      case INodeType::kDirectory:
        node.perms.mode = 0755;
        ++dirs_;
        break;
      case INodeType::kFile:
        node.perms.mode = 0644;
        ++files_;
        break;
      case INodeType::kSymlink:
        node.perms.mode = 0777;
        ++symlinks_;
        break;
    }
    node.perms.owner = user.uid;
    node.perms.group = user.gid;
    node.mtime = now;
    node.ctime = now;
    children_[parent][names_.intern(name)] = node.id;
    if (type == INodeType::kDirectory) {
        children_[node.id] = {};
    }
    INode& parent_node = nodes_.at(parent);
    parent_node.mtime = now;
    ++parent_node.version;
    auto [it, inserted] = nodes_.emplace(node.id, std::move(node));
    assert(inserted);
    return it->second;
}

StatusOr<INode>
NamespaceTree::create_file(std::string_view p, const UserContext& user,
                           sim::SimTime now)
{
    if (!path::is_valid(p) || p == "/") {
        return Status::invalid_argument(describe("bad path: ", p));
    }
    auto parent = resolve_mutable_parent(p, user);
    if (!parent.ok()) {
        return parent.status();
    }
    std::string_view name = path::basename_view(p);
    if (lookup_child((*parent)->id, name) != kInvalidId) {
        return Status::already_exists(describe("exists: ", p));
    }
    return add_node((*parent)->id, name, INodeType::kFile, user, now);
}

StatusOr<INode>
NamespaceTree::mkdirs(std::string_view p, const UserContext& user,
                      sim::SimTime now)
{
    if (!path::is_valid(p)) {
        return Status::invalid_argument(describe("bad path: ", p));
    }
    INode* cur = &nodes_.at(kRootId);
    for (std::string_view comp : path::PathView(p)) {
        if (!cur->is_dir()) {
            return Status::failed_precondition(describe("file on path: ", p));
        }
        if (!check_access(*cur, user, Access::kExecute)) {
            return Status::permission_denied("no traverse on " +
                                             full_path(cur->id));
        }
        INodeId child = lookup_child(cur->id, comp);
        if (child == kInvalidId) {
            if (!check_access(*cur, user, Access::kWrite)) {
                return Status::permission_denied("no write on " +
                                                 full_path(cur->id));
            }
            INode& made =
                add_node(cur->id, comp, INodeType::kDirectory, user, now);
            cur = &made;
        } else {
            cur = &nodes_.at(child);
        }
    }
    if (!cur->is_dir()) {
        return Status::already_exists(describe("file exists: ", p));
    }
    return *cur;
}

int32_t
NamespaceTree::open_count(INodeId id) const
{
    auto it = open_counts_.find(id);
    return it == open_counts_.end() ? 0 : it->second;
}

void
NamespaceTree::drop_link_record(INodeId id, INodeId parent, uint32_t name)
{
    auto it = links_.find(id);
    if (it == links_.end()) {
        return;
    }
    auto& refs = it->second;
    for (size_t i = 0; i < refs.size(); ++i) {
        if (refs[i].parent == parent && refs[i].name == name) {
            refs.erase(refs.begin() + static_cast<ptrdiff_t>(i));
            break;
        }
    }
    INode& node = nodes_.at(id);
    bool dropped_primary =
        node.parent == parent && names_.find(node.name) == name;
    if (dropped_primary && !refs.empty()) {
        node.parent = refs.front().parent;
        node.name = names_.name(refs.front().name);
    }
    // One entry left: INode::parent/name describe it fully again.
    if (refs.size() <= 1) {
        links_.erase(it);
    }
}

void
NamespaceTree::reap(INodeId id, INodeId via_parent, uint32_t via_name,
                    int64_t* removed, sim::SimTime now)
{
    INode& node = nodes_.at(id);
    if (node.is_dir()) {
        auto it = children_.find(id);
        if (it != children_.end()) {
            // Copy entries: removal mutates the child map.
            std::vector<std::pair<uint32_t, INodeId>> kids(it->second.begin(),
                                                           it->second.end());
            for (const auto& [name_id, cid] : kids) {
                reap(cid, id, name_id, removed, now);
            }
            children_.erase(id);
        }
        nodes_.erase(id);
        --dirs_;
        ++*removed;
        return;
    }
    if (node.is_symlink()) {
        nodes_.erase(id);
        --symlinks_;
        ++*removed;
        return;
    }
    drop_link_record(id, via_parent, via_name);
    if (node.nlink > 1) {
        // Another directory entry still references the inode.
        --node.nlink;
        node.ctime = now;
        ++node.version;
        ++*removed;
        return;
    }
    if (open_count(id) > 0) {
        // Unlinked-but-open: orphan until the last session releases it.
        node.parent = kInvalidId;
        node.nlink = 0;
        node.ctime = now;
        ++node.version;
        orphans_.insert(id);
        ++*removed;
        return;
    }
    nodes_.erase(id);
    --files_;
    ++*removed;
}

StatusOr<int64_t>
NamespaceTree::remove(std::string_view p, const UserContext& user,
                      bool recursive, sim::SimTime now)
{
    if (p == "/") {
        return Status::invalid_argument("cannot delete root");
    }
    // No-follow: deleting a symlink removes the link, not its target.
    auto resolved = resolve(p, user, Follow::kNoFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    INode target = resolved->target();
    // The entry being removed is (traversed dir, final component): with
    // hard links the inode's primary parent/name may be a different
    // entry; with intermediate symlinks the traversed dir may differ
    // from a textual parent(p).
    INodeId parent_id = resolved->chain[resolved->chain.size() - 2].id;
    INode& parent = nodes_.at(parent_id);
    if (!check_access(parent, user, Access::kWrite)) {
        return Status::permission_denied(
            describe("no write on parent of ", p));
    }
    if (target.is_dir() && !recursive && !children_[target.id].empty()) {
        return Status::failed_precondition(
            describe("directory not empty: ", p));
    }
    uint32_t name_id = names_.find(path::basename_view(p));
    int64_t removed = 0;
    children_[parent_id].erase(name_id);
    reap(target.id, parent_id, name_id, &removed, now);
    parent.mtime = now;
    ++parent.version;
    return removed;
}

bool
NamespaceTree::is_ancestor(INodeId maybe_ancestor, INodeId node) const
{
    for (INodeId cur = node; cur != kInvalidId;) {
        if (cur == maybe_ancestor) {
            return true;
        }
        auto it = nodes_.find(cur);
        cur = it == nodes_.end() ? kInvalidId : it->second.parent;
    }
    return false;
}

Status
NamespaceTree::rename(std::string_view src, std::string_view dst,
                      const UserContext& user, sim::SimTime now)
{
    if (src == "/" || !path::is_valid(src) || !path::is_valid(dst)) {
        return Status::invalid_argument("bad rename: " + std::string(src) +
                                        " -> " + std::string(dst));
    }
    // No-follow: renaming a symlink moves the link itself.
    auto resolved = resolve(src, user, Follow::kNoFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    INode target = resolved->target();
    if (path::is_under(dst, src)) {
        return Status::invalid_argument("cannot move under itself");
    }
    auto dst_parent_resolved = resolve(path::parent(dst), user);
    if (!dst_parent_resolved.ok()) {
        return dst_parent_resolved.status();
    }
    INodeId dst_parent_id = dst_parent_resolved->target().id;
    if (!nodes_.at(dst_parent_id).is_dir()) {
        return Status::failed_precondition("destination parent not a dir");
    }
    std::string_view dst_name = path::basename_view(dst);
    if (lookup_child(dst_parent_id, dst_name) != kInvalidId) {
        return Status::already_exists(describe("destination exists: ", dst));
    }
    // The entry being moved is (traversed dir, final component of src) —
    // see remove() for why this may differ from the inode's primary.
    INodeId src_parent_id = resolved->chain[resolved->chain.size() - 2].id;
    uint32_t src_name_id = names_.find(path::basename_view(src));
    INode& src_parent = nodes_.at(src_parent_id);
    INode& dst_parent = nodes_.at(dst_parent_id);
    if (!check_access(src_parent, user, Access::kWrite) ||
        !check_access(dst_parent, user, Access::kWrite)) {
        return Status::permission_denied("no write for rename");
    }
    if (is_ancestor(target.id, dst_parent_id)) {
        return Status::invalid_argument("cannot move under itself");
    }

    children_[src_parent_id].erase(src_name_id);
    src_parent.mtime = now;
    ++src_parent.version;
    INode& node = nodes_.at(target.id);
    uint32_t dst_name_id = names_.intern(dst_name);
    children_[dst_parent_id][dst_name_id] = node.id;
    auto lit = links_.find(node.id);
    if (lit != links_.end()) {
        for (LinkRef& ref : lit->second) {
            if (ref.parent == src_parent_id && ref.name == src_name_id) {
                ref = {dst_parent_id, dst_name_id};
                break;
            }
        }
    }
    // Re-point the primary unless a *secondary* link of a multi-link
    // file moved (the primary entry still exists unchanged).
    bool was_primary = node.parent == src_parent_id &&
                       names_.find(node.name) == src_name_id;
    if (was_primary || lit == links_.end()) {
        node.parent = dst_parent_id;
        node.name = std::string(dst_name);
    }
    node.mtime = now;
    ++node.version;
    dst_parent.mtime = now;
    ++dst_parent.version;
    return Status::make_ok();
}

StatusOr<INode>
NamespaceTree::link(std::string_view src, std::string_view dst,
                    const UserContext& user, sim::SimTime now)
{
    if (!path::is_valid(src) || !path::is_valid(dst) || src == "/" ||
        dst == "/") {
        return Status::invalid_argument("bad link: " + std::string(src) +
                                        " -> " + std::string(dst));
    }
    // No-follow: link(symlink, ...) would alias the link object itself,
    // which we reject below (files only, as HDFS/3FS do).
    auto resolved = resolve(src, user, Follow::kNoFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (!target.is_file()) {
        return Status::failed_precondition(
            describe("hard link target not a file: ", src));
    }
    auto parent = resolve_mutable_parent(dst, user);
    if (!parent.ok()) {
        return parent.status();
    }
    std::string_view name = path::basename_view(dst);
    if (lookup_child((*parent)->id, name) != kInvalidId) {
        return Status::already_exists(describe("exists: ", dst));
    }
    INode& node = nodes_.at(target.id);
    uint32_t name_id = names_.intern(name);
    auto& refs = links_[node.id];
    if (refs.empty()) {
        // First extra link: register the primary entry too.
        refs.push_back({node.parent, names_.find(node.name)});
    }
    refs.push_back({(*parent)->id, name_id});
    children_[(*parent)->id][name_id] = node.id;
    ++node.nlink;
    node.ctime = now;
    ++node.version;
    (*parent)->mtime = now;
    ++(*parent)->version;
    return node;
}

StatusOr<INode>
NamespaceTree::symlink(std::string_view link_path, std::string_view target,
                       const UserContext& user, sim::SimTime now)
{
    if (!path::is_valid(link_path) || link_path == "/") {
        return Status::invalid_argument(describe("bad path: ", link_path));
    }
    if (!path::is_valid(target)) {
        return Status::invalid_argument(
            describe("symlink target must be an absolute path: ", target));
    }
    auto parent = resolve_mutable_parent(link_path, user);
    if (!parent.ok()) {
        return parent.status();
    }
    std::string_view name = path::basename_view(link_path);
    if (lookup_child((*parent)->id, name) != kInvalidId) {
        return Status::already_exists(describe("exists: ", link_path));
    }
    INode& node =
        add_node((*parent)->id, name, INodeType::kSymlink, user, now);
    node.symlink_target = path::normalize(target);
    return node;
}

StatusOr<INode>
NamespaceTree::setattr(std::string_view p, const AttrUpdate& update,
                       const UserContext& user, sim::SimTime now)
{
    auto resolved = resolve(p, user, Follow::kFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    INode& node = nodes_.at(resolved->target().id);
    if (!user.is_superuser() && user.uid != node.perms.owner) {
        return Status::permission_denied(describe("not the owner of ", p));
    }
    if ((update.mask & (AttrUpdate::kOwner | AttrUpdate::kGroup)) != 0 &&
        !user.is_superuser()) {
        return Status::permission_denied("only the superuser may chown");
    }
    apply_attr_update(node, update, now);
    return node;
}

StatusOr<INode>
NamespaceTree::open_session(std::string_view p, uint64_t session_id,
                            sim::SimTime expiry, const UserContext& user)
{
    if (sessions_.find(session_id) != sessions_.end()) {
        return Status::already_exists("session already open: " +
                                      std::to_string(session_id));
    }
    auto resolved = resolve(p, user, Follow::kFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    const INode& target = resolved->target();
    if (!target.is_file()) {
        return Status::failed_precondition(describe("not a file: ", p));
    }
    if (!check_access(target, user, Access::kRead)) {
        return Status::permission_denied(describe("no read on ", p));
    }
    sessions_[session_id] = {session_id, target.id, expiry};
    ++open_counts_[target.id];
    return target;
}

StatusOr<int64_t>
NamespaceTree::close_session(uint64_t session_id, sim::SimTime now)
{
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
        return Status::not_found("no such session: " +
                                 std::to_string(session_id));
    }
    INodeId id = it->second.inode;
    sessions_.erase(it);
    auto oc = open_counts_.find(id);
    if (oc != open_counts_.end() && --oc->second <= 0) {
        open_counts_.erase(oc);
        if (orphans_.erase(id) > 0) {
            // Last holder of an unlinked inode: reclaim it now.
            nodes_.erase(id);
            --files_;
            (void)now;
            return 1;
        }
    }
    return 0;
}

NamespaceTree::GcResult
NamespaceTree::gc_prune(sim::SimTime now)
{
    GcResult out;
    // Sorted sweep so reclaim order is independent of hash-map layout.
    std::vector<uint64_t> expired;
    for (const auto& [sid, session] : sessions_) {
        if (session.expiry <= now) {
            expired.push_back(sid);
        }
    }
    std::sort(expired.begin(), expired.end());
    for (uint64_t sid : expired) {
        auto closed = close_session(sid, now);
        ++out.expired_sessions;
        out.reclaimed += closed.ok() ? *closed : 0;
    }
    // Crashed-session leftovers: orphans nothing holds open any more.
    for (auto it = orphans_.begin(); it != orphans_.end();) {
        if (open_count(*it) == 0) {
            nodes_.erase(*it);
            --files_;
            ++out.reclaimed;
            it = orphans_.erase(it);
        } else {
            ++it;
        }
    }
    return out;
}

FsStats
NamespaceTree::statfs() const
{
    FsStats stats;
    stats.inodes = static_cast<int64_t>(nodes_.size());
    stats.files = files_;
    stats.dirs = dirs_;
    stats.symlinks = symlinks_;
    stats.open_sessions = static_cast<int64_t>(sessions_.size());
    stats.orphans = static_cast<int64_t>(orphans_.size());
    stats.metadata_bytes = static_cast<int64_t>(total_metadata_bytes());
    return stats;
}

std::vector<INodeId>
NamespaceTree::orphan_ids() const
{
    return {orphans_.begin(), orphans_.end()};
}

std::vector<NamespaceTree::SessionView>
NamespaceTree::sessions() const
{
    std::vector<SessionView> out;
    out.reserve(sessions_.size());
    for (const auto& [sid, session] : sessions_) {
        out.push_back(session);
    }
    std::sort(out.begin(), out.end(),
              [](const SessionView& a, const SessionView& b) {
                  return a.id < b.id;
              });
    return out;
}

const INode*
NamespaceTree::get(INodeId id) const
{
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
}

INodeId
NamespaceTree::lookup_child(INodeId parent, std::string_view name) const
{
    // Unseen name: no directory anywhere contains it.
    uint32_t name_id = names_.find(name);
    if (name_id == NameTable::kNoName) {
        return kInvalidId;
    }
    auto it = children_.find(parent);
    if (it == children_.end()) {
        return kInvalidId;
    }
    auto cit = it->second.find(name_id);
    return cit == it->second.end() ? kInvalidId : cit->second;
}

std::vector<INodeId>
NamespaceTree::children(INodeId dir) const
{
    std::vector<std::pair<std::string_view, INodeId>> named;
    auto it = children_.find(dir);
    if (it != children_.end()) {
        named.reserve(it->second.size());
        for (const auto& [name_id, id] : it->second) {
            named.emplace_back(names_.name(name_id), id);
        }
    }
    // By-name order, matching the sorted child maps this replaced.
    std::sort(named.begin(), named.end());
    std::vector<INodeId> out;
    out.reserve(named.size());
    for (const auto& [name, id] : named) {
        out.push_back(id);
    }
    return out;
}

StatusOr<int64_t>
NamespaceTree::subtree_size(std::string_view p, const UserContext& user) const
{
    // No-follow, matching remove/rename: subtree ops act on the entry
    // itself, so sizing a final symlink must count the link (1 row),
    // not the target's subtree — and must not fail on a dangling link.
    auto resolved = resolve(p, user, Follow::kNoFinal);
    if (!resolved.ok()) {
        return resolved.status();
    }
    int64_t count = 0;
    std::vector<INodeId> stack{resolved->target().id};
    while (!stack.empty()) {
        INodeId id = stack.back();
        stack.pop_back();
        ++count;
        for (INodeId c : children(id)) {
            stack.push_back(c);
        }
    }
    return count;
}

std::string
NamespaceTree::full_path(INodeId id) const
{
    if (id == kRootId) {
        return "/";
    }
    std::vector<const INode*> chain;
    for (INodeId cur = id; cur != kInvalidId && cur != kRootId;) {
        auto it = nodes_.find(cur);
        if (it == nodes_.end()) {
            return "";
        }
        chain.push_back(&it->second);
        cur = it->second.parent;
    }
    std::string out;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        out += '/';
        out += (*it)->name;
    }
    return out;
}

size_t
NamespaceTree::total_metadata_bytes() const
{
    size_t total = 0;
    for (const auto& [id, node] : nodes_) {
        total += node.metadata_bytes();
    }
    return total;
}

}  // namespace lfs::ns
