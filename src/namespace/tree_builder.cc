#include "src/namespace/tree_builder.h"

#include <cassert>
#include <string>

#include "src/util/path.h"

namespace lfs::ns {

namespace {

void
build_level(NamespaceTree& tree, const std::string& dir, int levels_left,
            const TreeSpec& spec, const UserContext& user, sim::SimTime now,
            BuiltTree* out)
{
    out->dirs.push_back(dir);
    for (int f = 0; f < spec.files_per_dir; ++f) {
        std::string file = path::join(dir, "f" + std::to_string(f));
        auto created = tree.create_file(file, user, now);
        assert(created.ok());
        (void)created;
        out->files.push_back(file);
    }
    if (levels_left == 0) {
        return;
    }
    for (int d = 0; d < spec.fanout; ++d) {
        std::string sub = path::join(dir, "d" + std::to_string(d));
        auto made = tree.mkdirs(sub, user, now);
        assert(made.ok());
        (void)made;
        build_level(tree, sub, levels_left - 1, spec, user, now, out);
    }
}

}  // namespace

BuiltTree
build_balanced_tree(NamespaceTree& tree, const TreeSpec& spec,
                    const UserContext& user, sim::SimTime now)
{
    BuiltTree out;
    auto made = tree.mkdirs(spec.root, user, now);
    assert(made.ok());
    (void)made;
    build_level(tree, path::normalize(spec.root), spec.depth, spec, user, now,
                &out);
    return out;
}

BuiltTree
build_flat_directory(NamespaceTree& tree, const std::string& dir,
                     int64_t num_files, const UserContext& user,
                     sim::SimTime now)
{
    BuiltTree out;
    auto made = tree.mkdirs(dir, user, now);
    assert(made.ok());
    (void)made;
    out.dirs.push_back(path::normalize(dir));
    out.files.reserve(static_cast<size_t>(num_files));
    for (int64_t i = 0; i < num_files; ++i) {
        std::string file = path::join(dir, "f" + std::to_string(i));
        auto created = tree.create_file(file, user, now);
        assert(created.ok());
        (void)created;
        out.files.push_back(std::move(file));
    }
    return out;
}

BuiltTree
build_wide_subtree(NamespaceTree& tree, const std::string& root,
                   int64_t total_inodes, int fanout, const UserContext& user,
                   sim::SimTime now)
{
    BuiltTree out;
    auto made = tree.mkdirs(root, user, now);
    assert(made.ok());
    (void)made;
    std::string nroot = path::normalize(root);
    out.dirs.push_back(nroot);
    int64_t created = 1;
    // Breadth-first: create `fanout` subdirectories per directory, then fill
    // each with files until the budget is spent.
    std::vector<std::string> frontier{nroot};
    while (created < total_inodes) {
        std::vector<std::string> next;
        for (const std::string& dir : frontier) {
            for (int d = 0; d < fanout && created < total_inodes; ++d) {
                std::string sub = path::join(dir, "d" + std::to_string(d));
                auto sub_made = tree.mkdirs(sub, user, now);
                assert(sub_made.ok());
                (void)sub_made;
                out.dirs.push_back(sub);
                next.push_back(sub);
                ++created;
            }
            for (int f = 0; f < fanout * 4 && created < total_inodes; ++f) {
                std::string file = path::join(dir, "f" + std::to_string(f));
                auto file_made = tree.create_file(file, user, now);
                assert(file_made.ok());
                (void)file_made;
                out.files.push_back(file);
                ++created;
            }
        }
        frontier = std::move(next);
        if (frontier.empty()) {
            break;
        }
    }
    return out;
}

}  // namespace lfs::ns
