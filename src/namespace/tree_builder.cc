#include "src/namespace/tree_builder.h"

#include <cassert>
#include <string>

#include "src/util/path.h"

namespace lfs::ns {

namespace {

/**
 * Builders append children by parent inode id (bulk_add) instead of
 * re-resolving a path per create: state effects are identical to
 * create_file/mkdirs on the equivalent path, but construction runs at
 * slab speed, which is what makes the 10M+-inode scale benches loadable.
 */
void
build_level(NamespaceTree& tree, const std::string& dir, INodeId dir_id,
            int levels_left, const TreeSpec& spec, const UserContext& user,
            sim::SimTime now, BuiltTree* out)
{
    out->dirs.push_back(dir);
    for (int f = 0; f < spec.files_per_dir; ++f) {
        std::string name = "f" + std::to_string(f);
        INodeId id = tree.bulk_add(dir_id, name, INodeType::kFile, user, now);
        assert(id != kInvalidId);
        (void)id;
        out->files.push_back(path::join(dir, name));
    }
    if (levels_left == 0) {
        return;
    }
    for (int d = 0; d < spec.fanout; ++d) {
        std::string name = "d" + std::to_string(d);
        INodeId sub_id =
            tree.bulk_add(dir_id, name, INodeType::kDirectory, user, now);
        build_level(tree, path::join(dir, name), sub_id, levels_left - 1,
                    spec, user, now, out);
    }
}

int64_t
balanced_inode_count(const TreeSpec& spec)
{
    // Directories form a complete fanout-ary tree of `depth` levels below
    // the root; every directory also holds files_per_dir files.
    int64_t dirs = 0;
    int64_t level = 1;
    for (int i = 0; i <= spec.depth; ++i) {
        dirs += level;
        level *= spec.fanout;
    }
    return dirs * (1 + spec.files_per_dir);
}

}  // namespace

BuiltTree
build_balanced_tree(NamespaceTree& tree, const TreeSpec& spec,
                    const UserContext& user, sim::SimTime now)
{
    BuiltTree out;
    auto made = tree.mkdirs(spec.root, user, now);
    assert(made.ok());
    tree.bulk_reserve(static_cast<size_t>(balanced_inode_count(spec)));
    build_level(tree, path::normalize(spec.root), made->id, spec.depth, spec,
                user, now, &out);
    return out;
}

BuiltTree
build_flat_directory(NamespaceTree& tree, const std::string& dir,
                     int64_t num_files, const UserContext& user,
                     sim::SimTime now)
{
    BuiltTree out;
    auto made = tree.mkdirs(dir, user, now);
    assert(made.ok());
    std::string ndir = path::normalize(dir);
    out.dirs.push_back(ndir);
    out.files.reserve(static_cast<size_t>(num_files));
    tree.bulk_reserve(static_cast<size_t>(num_files));
    for (int64_t i = 0; i < num_files; ++i) {
        std::string name = "f" + std::to_string(i);
        INodeId id = tree.bulk_add(made->id, name, INodeType::kFile, user, now);
        assert(id != kInvalidId);
        (void)id;
        out.files.push_back(path::join(ndir, name));
    }
    return out;
}

BuiltTree
build_wide_subtree(NamespaceTree& tree, const std::string& root,
                   int64_t total_inodes, int fanout, const UserContext& user,
                   sim::SimTime now)
{
    BuiltTree out;
    auto made = tree.mkdirs(root, user, now);
    assert(made.ok());
    std::string nroot = path::normalize(root);
    out.dirs.push_back(nroot);
    tree.bulk_reserve(static_cast<size_t>(total_inodes));
    int64_t created = 1;
    // Breadth-first: create `fanout` subdirectories per directory, then fill
    // each with files until the budget is spent.
    struct Frame {
        std::string path;
        INodeId id;
    };
    std::vector<Frame> frontier{{nroot, made->id}};
    while (created < total_inodes) {
        std::vector<Frame> next;
        for (const Frame& dir : frontier) {
            for (int d = 0; d < fanout && created < total_inodes; ++d) {
                std::string name = "d" + std::to_string(d);
                INodeId sub_id = tree.bulk_add(dir.id, name,
                                               INodeType::kDirectory, user,
                                               now);
                std::string sub = path::join(dir.path, name);
                out.dirs.push_back(sub);
                next.push_back({std::move(sub), sub_id});
                ++created;
            }
            for (int f = 0; f < fanout * 4 && created < total_inodes; ++f) {
                std::string name = "f" + std::to_string(f);
                INodeId id =
                    tree.bulk_add(dir.id, name, INodeType::kFile, user, now);
                assert(id != kInvalidId);
                (void)id;
                out.files.push_back(path::join(dir.path, name));
                ++created;
            }
        }
        frontier = std::move(next);
        if (frontier.empty()) {
            break;
        }
    }
    return out;
}

}  // namespace lfs::ns
