/**
 * @file
 * The client-visible metadata operation vocabulary shared by every file
 * system in this repository. The mix of these operations in the Spotify
 * industrial workload is given in Table 2 of the paper.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/namespace/inode.h"
#include "src/sim/latency.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"
#include "src/util/status.h"

namespace lfs {

/** Metadata operation kinds (HDFS namespace subset used by the paper). */
enum class OpType : uint8_t {
    kCreateFile = 0,  ///< create empty file
    kMkdir,           ///< create directory (with parents, as `mkdirs`)
    kDeleteFile,      ///< delete file or empty directory
    kMv,              ///< rename/move file or directory
    kReadFile,        ///< open-for-read: fetch metadata + block locations
    kStat,            ///< getattr on file or directory
    kLs,              ///< list directory children
    kSubtreeMv,       ///< recursive mv of a large directory (Table 3)
    kSubtreeDelete,   ///< recursive delete
    kCount,
};

/** Human-readable short name ("read", "mkdir", ...). */
const char* op_name(OpType type);

/** True for operations that only read metadata. */
constexpr bool
is_read_op(OpType type)
{
    return type == OpType::kReadFile || type == OpType::kStat ||
           type == OpType::kLs;
}

/** True for subtree-granularity operations. */
constexpr bool
is_subtree_op(OpType type)
{
    return type == OpType::kSubtreeMv || type == OpType::kSubtreeDelete;
}

/** One client metadata request. */
struct Op {
    OpType type = OpType::kStat;
    std::string path;        ///< primary target
    std::string dst;         ///< destination (mv only)
    ns::UserContext user;    ///< principal
    uint64_t op_id = 0;      ///< unique id (dedup of resubmitted requests)
    sim::TraceContext trace;  ///< tracing context; each layer re-parents it
    /**
     * Absolute completion deadline propagated with the request (-1 =
     * none). Every hop — gateway, deployment admission queue, NameNode,
     * datanode — sheds work whose deadline has already passed instead of
     * processing it ("expired-in-queue" shedding, DESIGN.md overload
     * control). Stamped by the client when deadlines are enabled.
     */
    sim::SimTime deadline = -1;
};

/** True when @p op carries a deadline that has passed at @p now. */
inline bool
op_expired(const Op& op, sim::SimTime now)
{
    return op.deadline >= 0 && now >= op.deadline;
}

/** Result payload for read-type operations. */
struct OpResult {
    Status status;
    ns::INode inode;                    ///< target inode (read/stat/create)
    std::vector<ns::INode> chain;       ///< resolved path chain (root..target)
    std::vector<std::string> children;  ///< ls results
    bool cache_hit = false;             ///< served from a metadata cache
    int64_t inodes_touched = 1;         ///< rows affected (subtree ops)
    /**
     * Latency attribution ledger (DESIGN.md §11). Rides by value so a
     * late-finishing duplicate attempt (discarded by the client's
     * first-wins cell) can never stamp into a dead op. Empty unless
     * Simulation::attribution() is on; compiled out with
     * -DLFS_NO_ATTRIBUTION.
     */
    sim::LatencyLedger ledger;
    /** Trace id of the op's root span (0 = untraced). */
    uint64_t trace_id = 0;
};

inline const char*
op_name(OpType type)
{
    switch (type) {
      case OpType::kCreateFile:
        return "create";
      case OpType::kMkdir:
        return "mkdir";
      case OpType::kDeleteFile:
        return "delete";
      case OpType::kMv:
        return "mv";
      case OpType::kReadFile:
        return "read";
      case OpType::kStat:
        return "stat";
      case OpType::kLs:
        return "ls";
      case OpType::kSubtreeMv:
        return "subtree_mv";
      case OpType::kSubtreeDelete:
        return "subtree_delete";
      case OpType::kCount:
        break;
    }
    return "?";
}

}  // namespace lfs
