/**
 * @file
 * The client-visible metadata operation vocabulary shared by every file
 * system in this repository. The mix of these operations in the Spotify
 * industrial workload is given in Table 2 of the paper.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/namespace/inode.h"
#include "src/sim/latency.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"
#include "src/util/status.h"

namespace lfs {

/** Metadata operation kinds (HDFS namespace subset used by the paper). */
enum class OpType : uint8_t {
    kCreateFile = 0,  ///< create empty file
    kMkdir,           ///< create directory (with parents, as `mkdirs`)
    kDeleteFile,      ///< delete file or empty directory
    kMv,              ///< rename/move file or directory
    kReadFile,        ///< open-for-read: fetch metadata + block locations
    kStat,            ///< getattr on file or directory
    kLs,              ///< list directory children
    kSubtreeMv,       ///< recursive mv of a large directory (Table 3)
    kSubtreeDelete,   ///< recursive delete
    kHardLink,        ///< add a directory entry for an existing file
    kSymlink,         ///< create a symbolic link (dst holds the target)
    kSetAttr,         ///< chmod/chown/utimes (Op::attr carries the update)
    kStatFs,          ///< namespace-wide counters from shard aggregates
    kOpenSession,     ///< open a leased file session (Op::session_id)
    kCloseSession,    ///< close a file session; may reclaim an orphan
    kGcPrune,         ///< expire stale leases and reclaim orphaned inodes
    kCount,
};

/** Human-readable short name ("read", "mkdir", ...). */
const char* op_name(OpType type);

/** True for operations that only read metadata. */
constexpr bool
is_read_op(OpType type)
{
    return type == OpType::kReadFile || type == OpType::kStat ||
           type == OpType::kLs || type == OpType::kStatFs;
}

/** True for subtree-granularity operations. */
constexpr bool
is_subtree_op(OpType type)
{
    return type == OpType::kSubtreeMv || type == OpType::kSubtreeDelete;
}

/**
 * True when Op::dst names a second path mutated by the op (the rename
 * destination or the new hard-link name). kSymlink's dst is the stored
 * target string — the target itself is never touched, so it is excluded.
 */
constexpr bool
has_dst_path(OpType type)
{
    return type == OpType::kMv || type == OpType::kSubtreeMv ||
           type == OpType::kHardLink;
}

/** Attribute update carried by kSetAttr (mask selects applied fields). */
struct AttrUpdate {
    enum Field : uint8_t {
        kMode = 1,
        kOwner = 2,
        kGroup = 4,
        kTimes = 8,
    };
    uint8_t mask = 0;
    uint16_t mode = 0644;
    int32_t owner = 0;
    int32_t group = 0;
    sim::SimTime mtime = 0;  ///< applied when kTimes is set
};

/**
 * Apply @p u's masked fields to @p inode and stamp the change (ctime,
 * version). Permission checks are the caller's job — this is the shared
 * mutation every backend (tree rows, LSM rows) performs identically.
 */
inline void
apply_attr_update(ns::INode& inode, const AttrUpdate& u, sim::SimTime now)
{
    if ((u.mask & AttrUpdate::kMode) != 0) {
        inode.perms.mode = u.mode;
    }
    if ((u.mask & AttrUpdate::kOwner) != 0) {
        inode.perms.owner = u.owner;
    }
    if ((u.mask & AttrUpdate::kGroup) != 0) {
        inode.perms.group = u.group;
    }
    if ((u.mask & AttrUpdate::kTimes) != 0) {
        inode.mtime = u.mtime;
    }
    inode.ctime = now;
    ++inode.version;
}

/** One client metadata request. */
struct Op {
    OpType type = OpType::kStat;
    std::string path;        ///< primary target
    std::string dst;         ///< destination (mv only)
    ns::UserContext user;    ///< principal
    uint64_t op_id = 0;      ///< unique id (dedup of resubmitted requests)
    AttrUpdate attr;         ///< kSetAttr payload
    uint64_t session_id = 0;  ///< kOpenSession/kCloseSession session id
    /** Lease duration granted at kOpenSession (expiry = commit + ttl). */
    sim::SimTime lease_ttl = 0;
    sim::TraceContext trace;  ///< tracing context; each layer re-parents it
    /**
     * Absolute completion deadline propagated with the request (-1 =
     * none). Every hop — gateway, deployment admission queue, NameNode,
     * datanode — sheds work whose deadline has already passed instead of
     * processing it ("expired-in-queue" shedding, DESIGN.md overload
     * control). Stamped by the client when deadlines are enabled.
     */
    sim::SimTime deadline = -1;
};

/** True when @p op carries a deadline that has passed at @p now. */
inline bool
op_expired(const Op& op, sim::SimTime now)
{
    return op.deadline >= 0 && now >= op.deadline;
}

/** Result payload for read-type operations. */
struct OpResult {
    Status status;
    ns::INode inode;                    ///< target inode (read/stat/create)
    std::vector<ns::INode> chain;       ///< resolved path chain (root..target)
    std::vector<std::string> children;  ///< ls results
    bool cache_hit = false;             ///< served from a metadata cache
    int64_t inodes_touched = 1;         ///< rows affected (subtree ops)
    ns::FsStats stats;                  ///< kStatFs payload
    /**
     * Resolution dereferenced a symlink: the request path is an alias,
     * so path-keyed caches must not store the target under it.
     */
    bool via_symlink = false;
    /**
     * Latency attribution ledger (DESIGN.md §11). Rides by value so a
     * late-finishing duplicate attempt (discarded by the client's
     * first-wins cell) can never stamp into a dead op. Empty unless
     * Simulation::attribution() is on; compiled out with
     * -DLFS_NO_ATTRIBUTION.
     */
    sim::LatencyLedger ledger;
    /** Trace id of the op's root span (0 = untraced). */
    uint64_t trace_id = 0;
};

inline const char*
op_name(OpType type)
{
    switch (type) {
      case OpType::kCreateFile:
        return "create";
      case OpType::kMkdir:
        return "mkdir";
      case OpType::kDeleteFile:
        return "delete";
      case OpType::kMv:
        return "mv";
      case OpType::kReadFile:
        return "read";
      case OpType::kStat:
        return "stat";
      case OpType::kLs:
        return "ls";
      case OpType::kSubtreeMv:
        return "subtree_mv";
      case OpType::kSubtreeDelete:
        return "subtree_delete";
      case OpType::kHardLink:
        return "hardlink";
      case OpType::kSymlink:
        return "symlink";
      case OpType::kSetAttr:
        return "setattr";
      case OpType::kStatFs:
        return "statfs";
      case OpType::kOpenSession:
        return "open_session";
      case OpType::kCloseSession:
        return "close_session";
      case OpType::kGcPrune:
        return "gc_prune";
      case OpType::kCount:
        break;
    }
    return "?";
}

}  // namespace lfs
