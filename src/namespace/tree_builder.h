/**
 * @file
 * Deterministic construction of benchmark directory trees. The scalability
 * microbenchmarks (§5.3) operate on "random files and directories across an
 * existing directory tree"; these helpers build that tree and return the
 * path population to sample from.
 */
#pragma once

#include <string>
#include <vector>

#include "src/namespace/namespace_tree.h"

namespace lfs::ns {

/** Shape of a balanced benchmark tree. */
struct TreeSpec {
    std::string root = "/bench";  ///< subtree root (created if missing)
    int depth = 3;                ///< directory levels below the root
    int fanout = 4;               ///< subdirectories per directory
    int files_per_dir = 8;        ///< files in every directory
};

/** The path population produced by a builder. */
struct BuiltTree {
    std::vector<std::string> dirs;   ///< every directory incl. the root
    std::vector<std::string> files;  ///< every file
};

/** Build a balanced tree per @p spec. Paths are deterministic. */
BuiltTree build_balanced_tree(NamespaceTree& tree, const TreeSpec& spec,
                              const UserContext& user, sim::SimTime now);

/**
 * Build one directory containing @p num_files files — the "large flat
 * directory" shape used for the subtree-mv experiment (Table 3).
 */
BuiltTree build_flat_directory(NamespaceTree& tree, const std::string& dir,
                               int64_t num_files, const UserContext& user,
                               sim::SimTime now);

/**
 * Build a multi-level subtree with a total of approximately
 * @p total_inodes inodes (used for subtree operations that must span
 * several cache partitions).
 */
BuiltTree build_wide_subtree(NamespaceTree& tree, const std::string& root,
                             int64_t total_inodes, int fanout,
                             const UserContext& user, sim::SimTime now);

}  // namespace lfs::ns
