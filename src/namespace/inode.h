/**
 * @file
 * INode: the unit of DFS metadata. Every system in this repository (λFS,
 * HopsFS, IndexFS, CephFS-like) manipulates the same INode records; what
 * differs is where they are stored, cached, and locked.
 */
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>

#include "src/sim/time.h"

namespace lfs::ns {

/** Unique inode identifier. Root is kRootId; 0 is "invalid". */
using INodeId = int64_t;

constexpr INodeId kInvalidId = 0;
constexpr INodeId kRootId = 1;

enum class INodeType : uint8_t { kFile = 0, kDirectory = 1, kSymlink = 2 };

/** POSIX-ish permission bits (only user/other read-write-execute used). */
struct Permissions {
    uint16_t mode = 0755;
    int32_t owner = 0;
    int32_t group = 0;
};

/** A single file or directory metadata record. */
struct INode {
    INodeId id = kInvalidId;
    INodeId parent = kInvalidId;
    std::string name;  ///< final path component ("" for root)
    INodeType type = INodeType::kFile;
    Permissions perms;
    int64_t size = 0;          ///< logical file size in bytes
    int32_t block_count = 0;   ///< number of data blocks (files only)
    sim::SimTime mtime = 0;
    sim::SimTime ctime = 0;
    uint64_t version = 0;  ///< bumped on every mutation (cache validation)
    /**
     * Directory-entry reference count. Files start at 1 and gain a link
     * per `link()`; the inode is reclaimed when the count hits zero and
     * no file session holds it open (DESIGN.md §12). Directories and
     * symlinks always have exactly one entry.
     */
    int32_t nlink = 1;
    /** Absolute target path (symlinks only, "" otherwise). */
    std::string symlink_target;

    bool is_dir() const { return type == INodeType::kDirectory; }
    bool is_file() const { return type == INodeType::kFile; }
    bool is_symlink() const { return type == INodeType::kSymlink; }

    /**
     * Approximate serialized size, used for cache capacity accounting.
     * Mirrors HopsFS' on-NDB row footprint: fixed fields plus the name
     * (and, for symlinks, the stored target path).
     */
    size_t metadata_bytes() const
    {
        return 96 + name.size() + symlink_target.size();
    }
};

/**
 * The fixed-size, trivially-copyable inode record the namespace actually
 * stores (DESIGN.md §15). Strings are flattened to interned 32-bit ids
 * (component name, symlink target), so records pack into slab pages, cold
 * records serialize by memcpy, and resolve walks ids without touching the
 * heap. INode remains the materialized *view* handed across API
 * boundaries; conversion happens at the namespace edge.
 */
struct INodeRec {
    INodeId id = kInvalidId;
    INodeId parent = kInvalidId;
    int64_t size = 0;
    sim::SimTime mtime = 0;
    sim::SimTime ctime = 0;
    uint64_t version = 0;
    /** Interned final-component name (NameTable id; kNoName for "/"). */
    uint32_t name_id = 0xffffffffu;
    /**
     * Type-dependent payload: directories store their child-table index,
     * symlinks store the interned id of the normalized target path.
     */
    uint32_t aux = 0;
    int32_t block_count = 0;
    int32_t nlink = 1;
    int32_t owner = 0;
    int32_t group = 0;
    uint16_t mode = 0644;
    INodeType type = INodeType::kFile;
    /** Residency bookkeeping (clock referenced bit, cold tombstone). */
    uint8_t flags = 0;

    static constexpr uint8_t kFlagReferenced = 0x01;
    static constexpr uint8_t kFlagTombstone = 0x80;

    bool is_dir() const { return type == INodeType::kDirectory; }
    bool is_file() const { return type == INodeType::kFile; }
    bool is_symlink() const { return type == INodeType::kSymlink; }
};

static_assert(std::is_trivially_copyable_v<INodeRec>,
              "cold records serialize by memcpy");
static_assert(sizeof(INodeRec) == 80, "slab/cold layout is 80 bytes");

/**
 * Namespace-wide counters served by `statfs`. Collected from per-shard
 * aggregates in the sharded store; each tree maintains the type counts
 * incrementally so the collection itself is O(shards), not O(inodes).
 */
struct FsStats {
    int64_t inodes = 0;        ///< live inode records (incl. orphans)
    int64_t files = 0;
    int64_t dirs = 0;
    int64_t symlinks = 0;
    int64_t open_sessions = 0; ///< file sessions with unexpired leases
    int64_t orphans = 0;       ///< unlinked-but-open inodes awaiting GC
    int64_t metadata_bytes = 0;
};

/** Fold one shard/partition's counters into an aggregate. */
inline void
accumulate(FsStats& into, const FsStats& part)
{
    into.inodes += part.inodes;
    into.files += part.files;
    into.dirs += part.dirs;
    into.symlinks += part.symlinks;
    into.open_sessions += part.open_sessions;
    into.orphans += part.orphans;
    into.metadata_bytes += part.metadata_bytes;
}

/** Identity of the principal performing an operation. */
struct UserContext {
    int32_t uid = 0;
    int32_t gid = 0;

    bool is_superuser() const { return uid == 0; }
};

/** Permission classes checked during path resolution. */
enum class Access : uint8_t { kRead = 4, kWrite = 2, kExecute = 1 };

/** True if @p user may perform @p access on @p inode. */
bool check_access(const INode& inode, const UserContext& user, Access access);

}  // namespace lfs::ns
