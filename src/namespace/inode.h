/**
 * @file
 * INode: the unit of DFS metadata. Every system in this repository (λFS,
 * HopsFS, IndexFS, CephFS-like) manipulates the same INode records; what
 * differs is where they are stored, cached, and locked.
 */
#pragma once

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace lfs::ns {

/** Unique inode identifier. Root is kRootId; 0 is "invalid". */
using INodeId = int64_t;

constexpr INodeId kInvalidId = 0;
constexpr INodeId kRootId = 1;

enum class INodeType : uint8_t { kFile = 0, kDirectory = 1 };

/** POSIX-ish permission bits (only user/other read-write-execute used). */
struct Permissions {
    uint16_t mode = 0755;
    int32_t owner = 0;
    int32_t group = 0;
};

/** A single file or directory metadata record. */
struct INode {
    INodeId id = kInvalidId;
    INodeId parent = kInvalidId;
    std::string name;  ///< final path component ("" for root)
    INodeType type = INodeType::kFile;
    Permissions perms;
    int64_t size = 0;          ///< logical file size in bytes
    int32_t block_count = 0;   ///< number of data blocks (files only)
    sim::SimTime mtime = 0;
    sim::SimTime ctime = 0;
    uint64_t version = 0;  ///< bumped on every mutation (cache validation)

    bool is_dir() const { return type == INodeType::kDirectory; }
    bool is_file() const { return type == INodeType::kFile; }

    /**
     * Approximate serialized size, used for cache capacity accounting.
     * Mirrors HopsFS' on-NDB row footprint: fixed fields plus the name.
     */
    size_t metadata_bytes() const { return 96 + name.size(); }
};

/** Identity of the principal performing an operation. */
struct UserContext {
    int32_t uid = 0;
    int32_t gid = 0;

    bool is_superuser() const { return uid == 0; }
};

/** Permission classes checked during path resolution. */
enum class Access : uint8_t { kRead = 4, kWrite = 2, kExecute = 1 };

/** True if @p user may perform @p access on @p inode. */
bool check_access(const INode& inode, const UserContext& user, Access access);

}  // namespace lfs::ns
