/**
 * @file
 * The authoritative, in-memory file-system namespace: the semantic engine
 * behind every persistent metadata store in this repository.
 *
 * NamespaceTree implements hierarchical path resolution with permission
 * checks and the HDFS namespace operations (create, mkdirs, delete, mv,
 * stat, ls, read). It is purely functional w.r.t. time — callers provide
 * timestamps — and has no performance model; timing, locking, and
 * queueing are layered on by lfs::store::MetadataStore.
 */
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/namespace/inode.h"
#include "src/namespace/op.h"
#include "src/util/status.h"

namespace lfs::ns {

/** Result of resolving a path: the inode chain from root to target. */
struct ResolvedPath {
    std::vector<INode> chain;  ///< root first, target last

    const INode& target() const { return chain.back(); }
};

class NamespaceTree {
  public:
    /** Creates the tree containing only "/" owned by the superuser. */
    NamespaceTree();

    // ------------------------------------------------------------------
    // Resolution and reads
    // ------------------------------------------------------------------

    /**
     * Resolve @p path, checking execute permission on every ancestor
     * directory. Returns the full inode chain (root..target).
     */
    StatusOr<ResolvedPath> resolve(const std::string& path,
                                   const UserContext& user) const;

    /** getattr. */
    StatusOr<INode> stat(const std::string& path,
                         const UserContext& user) const;

    /** Open-for-read on a file: requires read permission on the target. */
    StatusOr<INode> read_file(const std::string& path,
                              const UserContext& user) const;

    /** List child names of a directory (requires read on the dir). */
    StatusOr<std::vector<std::string>> list(const std::string& path,
                                            const UserContext& user) const;

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /** Create an empty file. Parent must exist and be writable. */
    StatusOr<INode> create_file(const std::string& path,
                                const UserContext& user, sim::SimTime now);

    /** Create a directory, making intermediate directories as needed. */
    StatusOr<INode> mkdirs(const std::string& path, const UserContext& user,
                           sim::SimTime now);

    /**
     * Delete a file, an empty directory, or (when @p recursive) a whole
     * subtree. @return number of inodes removed.
     */
    StatusOr<int64_t> remove(const std::string& path, const UserContext& user,
                             bool recursive, sim::SimTime now);

    /**
     * Rename @p src to @p dst. The destination must not exist; its parent
     * must. Moving a directory moves the whole subtree.
     */
    Status rename(const std::string& src, const std::string& dst,
                  const UserContext& user, sim::SimTime now);

    // ------------------------------------------------------------------
    // Introspection (used by stores, caches, and tests)
    // ------------------------------------------------------------------

    /** Inode by id, or nullptr. */
    const INode* get(INodeId id) const;

    /** Child inode id by (parent, name), or kInvalidId. */
    INodeId lookup_child(INodeId parent, const std::string& name) const;

    /** Ids of all children of @p dir (empty for files/unknown ids). */
    std::vector<INodeId> children(INodeId dir) const;

    /** Number of inodes in the subtree rooted at @p path (incl. root). */
    StatusOr<int64_t> subtree_size(const std::string& path,
                                   const UserContext& user) const;

    /** Reconstruct the absolute path of inode @p id. */
    std::string full_path(INodeId id) const;

    /** Total number of inodes (including "/"). */
    size_t inode_count() const { return nodes_.size(); }

    /** Sum of metadata_bytes over every inode (working-set size). */
    size_t total_metadata_bytes() const;

  private:
    StatusOr<INode*> resolve_mutable_parent(const std::string& path,
                                            const UserContext& user);
    INode& add_node(INodeId parent, const std::string& name, INodeType type,
                    const UserContext& user, sim::SimTime now);
    void remove_subtree(INodeId id, int64_t* removed);
    bool is_ancestor(INodeId maybe_ancestor, INodeId node) const;

    std::unordered_map<INodeId, INode> nodes_;
    std::unordered_map<INodeId, std::map<std::string, INodeId>> children_;
    INodeId next_id_ = kRootId + 1;
};

}  // namespace lfs::ns
