/**
 * @file
 * The authoritative file-system namespace: the semantic engine behind
 * every persistent metadata store in this repository.
 *
 * NamespaceTree implements hierarchical path resolution with permission
 * checks and the HDFS namespace operations (create, mkdirs, delete, mv,
 * stat, ls, read). It is purely functional w.r.t. time — callers provide
 * timestamps — and has no performance model; timing, locking, and
 * queueing are layered on by lfs::store::MetadataStore.
 *
 * Storage is inode-id-centric (DESIGN.md §15): inodes are fixed-size POD
 * records (INodeRec) in a paged slab keyed by id through a flat
 * open-addressing index; directory children are flat (name id -> inode
 * id) tables; component names and symlink targets are interned
 * (util::NameTable). Resolution walks ids — one hash per component, no
 * bucket chains, zero steady-state allocations on the id path
 * (resolve_ids); the INode-chain API materializes views at the edge.
 *
 * On top sits a two-tier residency layer modelled on AnyCache's InodeTree
 * and the λFS premise that only the hot working set need live near
 * compute: directories, symlinks, and recently-touched file inodes stay
 * slab-resident under a byte budget (LFS_NAMESPACE_BUDGET_MB,
 * clock/second-chance eviction); cold file inodes are serialized into an
 * lsm::ColdPageStore and demand-paged back on first touch. Migration is
 * exclusive — an inode lives in exactly one tier — and eviction is
 * deferred to operation exit, so no record pointer obtained during an
 * operation is ever invalidated mid-operation. With the budget unset the
 * cold tier is never touched and behavior is byte-identical to the
 * always-resident tree.
 */
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/lsm/cold_store.h"
#include "src/namespace/inode.h"
#include "src/namespace/op.h"
#include "src/sim/stats.h"
#include "src/util/hash.h"
#include "src/util/name_table.h"
#include "src/util/status.h"

namespace lfs::ns {

/** The shared interner (hoisted to src/util/; alias kept for callers). */
using NameTable = util::NameTable;

/** Result of resolving a path: the inode chain from root to target. */
struct ResolvedPath {
    std::vector<INode> chain;  ///< root first, target last
    /**
     * True when any symlink was dereferenced: the chain is then the
     * canonical post-resolution chain, and the *request* path must not
     * be used as a cache key for the target (invalidations go to the
     * canonical path, never the alias).
     */
    bool via_symlink = false;

    const INode& target() const { return chain.back(); }
};

/**
 * Whether resolution dereferences a symlink in the *final* position.
 * Intermediate symlink components are always followed. Reads that open
 * the target (read, ls, setattr, open-session) follow; ops that operate
 * on the link itself (stat/lstat, delete, rename source, hard-link
 * source) do not.
 */
enum class Follow : uint8_t { kFinal, kNoFinal };

/** Symlink dereference bound; exceeding it fails with ELOOP semantics. */
constexpr int kMaxSymlinkFollows = 8;

/**
 * An inode-id chain (root first, target last) with inline capacity
 * covering any realistic path depth, so the id-centric resolve path
 * allocates nothing in steady state. Reusable: clear() keeps any spill
 * capacity.
 */
class IdChain {
  public:
    static constexpr size_t kInline = 24;

    void
    clear()
    {
        n_ = 0;
        spill_.clear();
    }

    void
    push(INodeId id)
    {
        if (n_ < kInline) {
            inline_[n_++] = id;
        } else {
            spill_.push_back(id);
        }
    }

    size_t size() const { return n_ + spill_.size(); }
    bool empty() const { return size() == 0; }

    INodeId
    operator[](size_t i) const
    {
        return i < n_ ? inline_[i] : spill_[i - n_];
    }

    INodeId back() const { return (*this)[size() - 1]; }

  private:
    std::array<INodeId, kInline> inline_{};
    size_t n_ = 0;
    std::vector<INodeId> spill_;
};

/** Two-tier residency counters (ns.* metric gauges, DESIGN.md §15). */
struct ResidencyStats {
    size_t resident_inodes = 0;  ///< slab-resident records
    size_t cold_inodes = 0;      ///< records in the cold tier
    /** Slab-resident record bytes — the quantity the budget bounds. */
    size_t slab_bytes = 0;
    /**
     * Full resident footprint: live records, the id index, directory
     * child tables, and interned names/targets. The structural part
     * (tables, names) is an unevictable floor outside the budget.
     */
    size_t resident_bytes = 0;
    size_t cold_bytes = 0;  ///< serialized cold-tier bytes
    uint64_t pageins = 0;
    uint64_t pageouts = 0;
    /** resident_bytes / (resident + cold inodes); 0 when empty. */
    double bytes_per_inode = 0.0;
};

class NamespaceTree {
  public:
    /**
     * Creates the tree containing only "/" owned by the superuser. The
     * residency budget comes from LFS_NAMESPACE_BUDGET_MB (unset: the
     * tree is always fully resident and the cold tier stays untouched).
     */
    NamespaceTree();

    // ------------------------------------------------------------------
    // Resolution and reads
    // ------------------------------------------------------------------

    /**
     * Resolve @p path, checking execute permission on every ancestor
     * directory and following symlinks (bounded by kMaxSymlinkFollows;
     * ELOOP surfaces as FAILED_PRECONDITION). Returns the full inode
     * chain (root..target); after a symlink splice the chain is the
     * canonical post-resolution chain.
     */
    StatusOr<ResolvedPath> resolve(std::string_view path,
                                   const UserContext& user,
                                   Follow follow = Follow::kFinal) const;

    /**
     * Id-centric resolve: identical semantics (permission checks,
     * symlink follows, error statuses) but fills @p out with the inode
     * ids of the chain instead of materializing INode views — the
     * zero-allocation walk used for lock-set computation and any caller
     * that only needs ids. @p via_symlink (optional) reports whether a
     * splice occurred.
     */
    Status resolve_ids(std::string_view path, const UserContext& user,
                       Follow follow, IdChain* out,
                       bool* via_symlink = nullptr) const;

    /** getattr with lstat semantics: a final symlink is not followed. */
    StatusOr<INode> stat(std::string_view path, const UserContext& user) const;

    /** Open-for-read on a file: requires read permission on the target. */
    StatusOr<INode> read_file(std::string_view path,
                              const UserContext& user) const;

    /**
     * List child names of a directory (requires read on the dir), in
     * lexicographic order.
     */
    StatusOr<std::vector<std::string>> list(std::string_view path,
                                            const UserContext& user) const;

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /** Create an empty file. Parent must exist and be writable. */
    StatusOr<INode> create_file(std::string_view path, const UserContext& user,
                                sim::SimTime now);

    /** Create a directory, making intermediate directories as needed. */
    StatusOr<INode> mkdirs(std::string_view path, const UserContext& user,
                           sim::SimTime now);

    /**
     * Delete a file, an empty directory, or (when @p recursive) a whole
     * subtree. @return number of inodes removed.
     */
    StatusOr<int64_t> remove(std::string_view path, const UserContext& user,
                             bool recursive, sim::SimTime now);

    /**
     * Rename @p src to @p dst. The destination must not exist; its parent
     * must. Moving a directory moves the whole subtree. A final symlink
     * at @p src moves the link itself.
     */
    Status rename(std::string_view src, std::string_view dst,
                  const UserContext& user, sim::SimTime now);

    /**
     * Hard link: add directory entry @p dst for the existing file at
     * @p src (files only; directories and symlinks are rejected). Bumps
     * the shared inode's link count.
     */
    StatusOr<INode> link(std::string_view src, std::string_view dst,
                         const UserContext& user, sim::SimTime now);

    /**
     * Create a symbolic link at @p link_path whose stored target is the
     * absolute path @p target. The target need not exist (dangling links
     * are legal); it is validated syntactically only.
     */
    StatusOr<INode> symlink(std::string_view link_path,
                            std::string_view target, const UserContext& user,
                            sim::SimTime now);

    /**
     * Update mode/owner/group/times per @p update's mask. Follows a
     * final symlink (chmod semantics). Owner or superuser only; chown
     * itself is superuser-only.
     */
    StatusOr<INode> setattr(std::string_view path, const AttrUpdate& update,
                            const UserContext& user, sim::SimTime now);

    // ------------------------------------------------------------------
    // Bulk loading (benchmark tree construction)
    // ------------------------------------------------------------------

    /**
     * Pre-size the slab and id index for @p additional inodes so a bulk
     * load triggers no incremental growth.
     */
    void bulk_reserve(size_t additional);

    /**
     * Append a child to @p parent (a resident directory) without path
     * resolution or permission checks — the slab-speed loader used by
     * tree_builder. The caller guarantees @p name is not present in
     * @p parent. State effects are identical to create_file/mkdirs on
     * the equivalent path (ids, versions, timestamps, counters).
     */
    INodeId bulk_add(INodeId parent, std::string_view name, INodeType type,
                     const UserContext& user, sim::SimTime now);

    // ------------------------------------------------------------------
    // File sessions, orphans, and GC (DESIGN.md §12)
    // ------------------------------------------------------------------

    /**
     * Open a leased session on the file at @p path (follows symlinks).
     * @p session_id must be globally unique; @p expiry is the absolute
     * lease expiry. While any session holds an inode, unlinking its last
     * directory entry orphans the inode instead of reclaiming it.
     */
    StatusOr<INode> open_session(std::string_view path, uint64_t session_id,
                                 sim::SimTime expiry, const UserContext& user);

    /**
     * Close a session. @return the number of orphaned inodes reclaimed
     * (1 when this was the last session holding an unlinked inode).
     */
    StatusOr<int64_t> close_session(uint64_t session_id, sim::SimTime now);

    struct GcResult {
        int64_t expired_sessions = 0;  ///< sessions pruned (lease passed)
        int64_t reclaimed = 0;         ///< orphaned inodes reclaimed
    };

    /**
     * Background prune pass: expire every session whose lease has passed
     * at @p now (crashed-client leftovers) and reclaim orphaned inodes
     * no live session holds.
     */
    GcResult gc_prune(sim::SimTime now);

    /** Namespace-wide counters (statfs). O(1): all counters incremental. */
    FsStats statfs() const;

    // ------------------------------------------------------------------
    // Residency (two-tier paging, DESIGN.md §15)
    // ------------------------------------------------------------------

    /** Byte budget for slab-resident records (SIZE_MAX: paging off). */
    size_t budget_bytes() const { return budget_bytes_; }

    /** Override the env-derived budget (tests/benches); enforces now. */
    void set_budget_bytes(size_t bytes);

    /** Per-tier occupancy/traffic counters. */
    ResidencyStats residency_stats() const;

    uint64_t pageins() const { return pageins_; }
    uint64_t pageouts() const { return pageouts_; }

    /** Demand-fault service time (wall nanoseconds per page-in). */
    const sim::Histogram& fault_latency() const { return fault_ns_; }

    // ------------------------------------------------------------------
    // Introspection (used by stores, caches, and tests)
    // ------------------------------------------------------------------

    /**
     * Inode view by id, or nullptr. Reads either tier without migrating
     * (an audit sweep cannot perturb residency). The returned pointer
     * aims into a small ring of scratch views: it stays valid across a
     * handful of interleaved introspection calls but not indefinitely —
     * copy the INode to keep it.
     */
    const INode* get(INodeId id) const;

    /** Child inode id by (parent, name), or kInvalidId. */
    INodeId lookup_child(INodeId parent, std::string_view name) const;

    /**
     * Ids of all children of @p dir (empty for files/unknown ids),
     * ordered by child name.
     */
    std::vector<INodeId> children(INodeId dir) const;

    /**
     * Number of inodes in the subtree rooted at @p path (incl. root).
     * lstat semantics: a final symlink counts as one row, matching what
     * remove/rename would act on.
     */
    StatusOr<int64_t> subtree_size(std::string_view path,
                                   const UserContext& user) const;

    /** Reconstruct the absolute path of inode @p id. */
    std::string full_path(INodeId id) const;

    /** Total number of inodes (including "/"), across both tiers. */
    size_t inode_count() const { return slab_.live() + cold_count_; }

    /** Sum of metadata_bytes over every inode (working-set size). */
    size_t total_metadata_bytes() const { return meta_bytes_; }

    /** Distinct component names interned so far (diagnostics). */
    size_t interned_names() const { return names_.size(); }

    /** Open (unexpired or not-yet-pruned) session count. */
    size_t open_session_count() const { return sessions_.size(); }

    /** Unlinked-but-held inodes awaiting session close or GC. */
    size_t orphan_count() const { return orphans_.size(); }

    /** Orphaned inode ids, ascending (test/oracle introspection). */
    std::vector<INodeId> orphan_ids() const;

    /** One open file session (test/oracle introspection). */
    struct SessionView {
        uint64_t id = 0;
        INodeId inode = kInvalidId;
        sim::SimTime expiry = 0;
    };

    /** All open sessions, ascending by session id. */
    std::vector<SessionView> sessions() const;

  private:
    /**
     * Paged arena of INodeRec slots: bump allocation with a LIFO free
     * list; page addresses never move, so record pointers stay valid
     * across growth. A freed slot's record id is kInvalidId.
     */
    class InodeSlab {
      public:
        static constexpr size_t kPageRecs = 4096;

        uint32_t
        alloc()
        {
            uint32_t slot;
            if (!free_.empty()) {
                slot = free_.back();
                free_.pop_back();
            } else {
                slot = span_++;
                if (slot / kPageRecs >= pages_.size()) {
                    pages_.push_back(
                        std::make_unique<INodeRec[]>(kPageRecs));
                }
            }
            ++live_;
            return slot;
        }

        void
        free_slot(uint32_t slot)
        {
            at(slot).id = kInvalidId;
            free_.push_back(slot);
            --live_;
        }

        INodeRec&
        at(uint32_t slot)
        {
            return pages_[slot / kPageRecs][slot % kPageRecs];
        }

        const INodeRec&
        at(uint32_t slot) const
        {
            return pages_[slot / kPageRecs][slot % kPageRecs];
        }

        /** High-water slot count (clock sweep domain). */
        uint32_t span() const { return span_; }
        size_t live() const { return live_; }
        size_t live_bytes() const { return live_ * sizeof(INodeRec); }

        void
        reserve(size_t n)
        {
            size_t pages = (span_ + n + kPageRecs - 1) / kPageRecs;
            while (pages_.size() < pages) {
                pages_.push_back(std::make_unique<INodeRec[]>(kPageRecs));
            }
            free_.reserve(free_.size() + 64);
        }

      private:
        std::vector<std::unique_ptr<INodeRec[]>> pages_;
        std::vector<uint32_t> free_;
        uint32_t span_ = 0;
        size_t live_ = 0;
    };

    /** Child table of one directory: interned name id -> inode id. */
    using DirTable = util::ChildTable<INodeId>;

    /** One directory entry referencing a multi-link file. */
    struct LinkRef {
        INodeId parent = kInvalidId;
        uint32_t name = NameTable::kNoName;
    };

    /**
     * Reentrancy scope for budget enforcement: public entry points nest
     * freely; eviction runs only when the outermost one exits, so no
     * slab pointer obtained inside an operation is invalidated by it.
     */
    struct OpScope {
        const NamespaceTree* t;

        explicit OpScope(const NamespaceTree* tree) : t(tree)
        {
            ++t->op_depth_;
        }

        ~OpScope()
        {
            if (--t->op_depth_ == 0) {
                t->enforce_budget();
            }
        }
    };

    StatusOr<ResolvedPath> resolve_ex(std::string_view path,
                                      const UserContext& user,
                                      bool follow_final, int depth) const;
    Status resolve_ids_ex(std::string_view path, const UserContext& user,
                          bool follow_final, int depth, IdChain* out,
                          bool* via_symlink) const;
    StatusOr<INodeRec*> resolve_mutable_parent(std::string_view path,
                                               const UserContext& user);
    INodeRec& add_node(INodeId parent, std::string_view name, INodeType type,
                       const UserContext& user, sim::SimTime now);
    /**
     * Release the inode whose directory entry (@p via_parent, @p via_name)
     * the caller has removed (or is removing): recurse into directories,
     * decrement multi-link files, orphan session-held files, and erase
     * everything else.
     */
    void reap(INodeId id, INodeId via_parent, uint32_t via_name,
              int64_t* removed, sim::SimTime now);
    /** Drop one (parent, name) entry from links_[id]; re-point the
     *  primary (INodeRec::parent/name_id) if that entry was the primary. */
    void drop_link_record(INodeId id, INodeId parent, uint32_t name);
    /** Reclaim an unlinked file inode from whichever tier holds it. */
    void reclaim_inode(INodeId id);
    int32_t open_count(INodeId id) const;
    bool is_ancestor(INodeId maybe_ancestor, INodeId node) const;

    /**
     * One candidate in the eviction ring. The id makes entries
     * generation-safe: a freed-and-reused slot no longer matches, so the
     * stale entry is dropped when it reaches the front.
     */
    struct EvictEntry {
        uint32_t slot = 0;
        INodeId id = kInvalidId;
    };

    /** Resident record pointer, or nullptr (no page-in). */
    INodeRec* resident_ptr(INodeId id) const;
    /** Copy the record from either tier, or false (no migration). */
    bool read_any(INodeId id, INodeRec* out) const;
    /**
     * Resident record for @p id, demand-paging it in from the cold tier
     * on miss (the fault path). Sets the clock referenced bit. Returns
     * nullptr only for ids in neither tier.
     */
    INodeRec* fetch(INodeId id) const;
    /** Page one resident file record out to the cold tier. */
    void evict_slot(uint32_t slot) const;
    /** Second-chance sweep over the eviction ring until the slab fits. */
    void enforce_budget() const;
    /** Enqueue a resident file as an eviction candidate (budget on). */
    void ring_push(uint32_t slot, INodeId id) const;
    /** Re-seed the ring from the slab (budget turned on mid-run). */
    void rebuild_evict_ring() const;

    DirTable& dir_table(const INodeRec& dir);
    const DirTable& dir_table(const INodeRec& dir) const;
    uint32_t alloc_dir_table();
    void free_dir_table(uint32_t idx);

    INode materialize(const INodeRec& rec) const;
    const std::string& name_of(const INodeRec& rec) const;

    // ---- hot tier ----
    mutable InodeSlab slab_;
    /** id -> slab slot + 1, resident records only. */
    mutable util::ChildTable<uint64_t> index_;
    /** Directory child tables, referenced by INodeRec::aux. */
    std::deque<DirTable> dir_tables_;
    std::vector<uint32_t> dir_free_;
    NameTable names_;    ///< component names
    NameTable targets_;  ///< symlink target paths

    // ---- cold tier ----
    mutable lsm::ColdPageStore cold_;
    size_t budget_bytes_;
    /**
     * FIFO second-chance ring of eviction candidates — file slots only,
     * so enforcement never wades through pinned directory records (a
     * whole-slab clock degenerates to O(span) per eviction once the
     * unevictable directory floor alone exceeds the budget). Maintained
     * only while the budget is set; entries go stale (dropped at the
     * front) rather than being searched for on delete.
     */
    mutable std::deque<EvictEntry> evict_ring_;
    mutable int op_depth_ = 0;
    mutable size_t cold_count_ = 0;  ///< live cold records
    mutable size_t evictable_ = 0;   ///< resident file records
    mutable uint64_t pageins_ = 0;
    mutable uint64_t pageouts_ = 0;
    mutable sim::Histogram fault_ns_;

    /** Scratch views backing get(); see its contract. */
    mutable std::array<INode, 4> scratch_;
    mutable size_t scratch_next_ = 0;

    /**
     * All directory entries of files with nlink > 1 (id-keyed link
     * resolution). Populated lazily on the first link(); single-link
     * files are fully described by INodeRec::parent/name_id.
     */
    std::unordered_map<INodeId, std::vector<LinkRef>> links_;
    std::unordered_map<uint64_t, SessionView> sessions_;
    std::unordered_map<INodeId, int32_t> open_counts_;
    /** Ordered so GC reclaim sweeps deterministically. */
    std::set<INodeId> orphans_;
    INodeId next_id_ = kRootId + 1;
    /** Incremental counters so statfs collection is O(1) per shard. */
    int64_t files_ = 0;
    int64_t dirs_ = 1;  ///< "/"
    int64_t symlinks_ = 0;
    size_t meta_bytes_ = 96;  ///< "/" has an empty name
};

}  // namespace lfs::ns
