/**
 * @file
 * The authoritative, in-memory file-system namespace: the semantic engine
 * behind every persistent metadata store in this repository.
 *
 * NamespaceTree implements hierarchical path resolution with permission
 * checks and the HDFS namespace operations (create, mkdirs, delete, mv,
 * stat, ls, read). It is purely functional w.r.t. time — callers provide
 * timestamps — and has no performance model; timing, locking, and
 * queueing are layered on by lfs::store::MetadataStore.
 *
 * Resolution hot path (DESIGN.md §10): component names are interned into a
 * NameTable, so per-directory child maps are keyed by 32-bit name ids and
 * a lookup hashes each component string exactly once per resolve — child
 * maps compare ids, never strings. All paths enter as std::string_view and
 * are walked with path::PathView; resolving a path allocates nothing
 * beyond the returned inode chain.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/namespace/inode.h"
#include "src/namespace/op.h"
#include "src/util/hash.h"
#include "src/util/status.h"

namespace lfs::ns {

/**
 * Interns component names to dense 32-bit ids. Directory entries store the
 * id; the directory tables compare ids instead of strings, and each name's
 * bytes are stored once no matter how many directories contain it (hot
 * directories in the paper's workloads share names like "part-00000").
 */
class NameTable {
  public:
    static constexpr uint32_t kNoName = 0xffffffffu;

    /** Id for @p name, interning it on first sight. */
    uint32_t
    intern(std::string_view name)
    {
        auto it = ids_.find(name);
        if (it != ids_.end()) {
            return it->second;
        }
        uint32_t id = static_cast<uint32_t>(storage_.size());
        storage_.emplace_back(name);  // deque: stable addresses
        ids_.emplace(std::string_view(storage_.back()), id);
        return id;
    }

    /** Id for @p name, or kNoName if it was never interned. */
    uint32_t
    find(std::string_view name) const
    {
        auto it = ids_.find(name);
        return it == ids_.end() ? kNoName : it->second;
    }

    /** The interned spelling of @p id (must be a valid id). */
    const std::string& name(uint32_t id) const { return storage_[id]; }

    size_t size() const { return storage_.size(); }

  private:
    std::deque<std::string> storage_;  ///< id -> name, addresses stable
    /** Views key into storage_, so each name's bytes exist once. */
    std::unordered_map<std::string_view, uint32_t, StringHash> ids_;
};

/** Result of resolving a path: the inode chain from root to target. */
struct ResolvedPath {
    std::vector<INode> chain;  ///< root first, target last

    const INode& target() const { return chain.back(); }
};

class NamespaceTree {
  public:
    /** Creates the tree containing only "/" owned by the superuser. */
    NamespaceTree();

    // ------------------------------------------------------------------
    // Resolution and reads
    // ------------------------------------------------------------------

    /**
     * Resolve @p path, checking execute permission on every ancestor
     * directory. Returns the full inode chain (root..target).
     */
    StatusOr<ResolvedPath> resolve(std::string_view path,
                                   const UserContext& user) const;

    /** getattr. */
    StatusOr<INode> stat(std::string_view path, const UserContext& user) const;

    /** Open-for-read on a file: requires read permission on the target. */
    StatusOr<INode> read_file(std::string_view path,
                              const UserContext& user) const;

    /**
     * List child names of a directory (requires read on the dir), in
     * lexicographic order.
     */
    StatusOr<std::vector<std::string>> list(std::string_view path,
                                            const UserContext& user) const;

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /** Create an empty file. Parent must exist and be writable. */
    StatusOr<INode> create_file(std::string_view path, const UserContext& user,
                                sim::SimTime now);

    /** Create a directory, making intermediate directories as needed. */
    StatusOr<INode> mkdirs(std::string_view path, const UserContext& user,
                           sim::SimTime now);

    /**
     * Delete a file, an empty directory, or (when @p recursive) a whole
     * subtree. @return number of inodes removed.
     */
    StatusOr<int64_t> remove(std::string_view path, const UserContext& user,
                             bool recursive, sim::SimTime now);

    /**
     * Rename @p src to @p dst. The destination must not exist; its parent
     * must. Moving a directory moves the whole subtree.
     */
    Status rename(std::string_view src, std::string_view dst,
                  const UserContext& user, sim::SimTime now);

    // ------------------------------------------------------------------
    // Introspection (used by stores, caches, and tests)
    // ------------------------------------------------------------------

    /** Inode by id, or nullptr. */
    const INode* get(INodeId id) const;

    /** Child inode id by (parent, name), or kInvalidId. */
    INodeId lookup_child(INodeId parent, std::string_view name) const;

    /**
     * Ids of all children of @p dir (empty for files/unknown ids),
     * ordered by child name.
     */
    std::vector<INodeId> children(INodeId dir) const;

    /** Number of inodes in the subtree rooted at @p path (incl. root). */
    StatusOr<int64_t> subtree_size(std::string_view path,
                                   const UserContext& user) const;

    /** Reconstruct the absolute path of inode @p id. */
    std::string full_path(INodeId id) const;

    /** Total number of inodes (including "/"). */
    size_t inode_count() const { return nodes_.size(); }

    /** Sum of metadata_bytes over every inode (working-set size). */
    size_t total_metadata_bytes() const;

    /** Distinct component names interned so far (diagnostics). */
    size_t interned_names() const { return names_.size(); }

  private:
    /** Child map of one directory: interned name id -> inode id. */
    using ChildMap = std::unordered_map<uint32_t, INodeId>;

    StatusOr<INode*> resolve_mutable_parent(std::string_view path,
                                            const UserContext& user);
    INode& add_node(INodeId parent, std::string_view name, INodeType type,
                    const UserContext& user, sim::SimTime now);
    void remove_subtree(INodeId id, int64_t* removed);
    bool is_ancestor(INodeId maybe_ancestor, INodeId node) const;

    std::unordered_map<INodeId, INode> nodes_;
    std::unordered_map<INodeId, ChildMap> children_;
    NameTable names_;
    INodeId next_id_ = kRootId + 1;
};

}  // namespace lfs::ns
