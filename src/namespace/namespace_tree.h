/**
 * @file
 * The authoritative, in-memory file-system namespace: the semantic engine
 * behind every persistent metadata store in this repository.
 *
 * NamespaceTree implements hierarchical path resolution with permission
 * checks and the HDFS namespace operations (create, mkdirs, delete, mv,
 * stat, ls, read). It is purely functional w.r.t. time — callers provide
 * timestamps — and has no performance model; timing, locking, and
 * queueing are layered on by lfs::store::MetadataStore.
 *
 * Resolution hot path (DESIGN.md §10): component names are interned into a
 * NameTable, so per-directory child maps are keyed by 32-bit name ids and
 * a lookup hashes each component string exactly once per resolve — child
 * maps compare ids, never strings. All paths enter as std::string_view and
 * are walked with path::PathView; resolving a path allocates nothing
 * beyond the returned inode chain.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/namespace/inode.h"
#include "src/namespace/op.h"
#include "src/util/hash.h"
#include "src/util/status.h"

namespace lfs::ns {

/**
 * Interns component names to dense 32-bit ids. Directory entries store the
 * id; the directory tables compare ids instead of strings, and each name's
 * bytes are stored once no matter how many directories contain it (hot
 * directories in the paper's workloads share names like "part-00000").
 *
 * The name -> id index is an open-addressing table over (hash, id) slots:
 * one FNV-1a hash of the component, a linear probe through contiguous
 * 16-byte slots, and a full-hash compare before the single string verify.
 * No per-lookup allocation, no bucket chains, no modulo — measurably
 * cheaper than the former unordered_map on the resolve hot path.
 */
class NameTable {
  public:
    static constexpr uint32_t kNoName = 0xffffffffu;

    /** Id for @p name, interning it on first sight. */
    uint32_t
    intern(std::string_view name)
    {
        const uint64_t h = fnv1a(name);
        if (!slots_.empty()) {
            for (size_t i = h & mask_;; i = (i + 1) & mask_) {
                const Slot& s = slots_[i];
                if (s.id == kNoName) {
                    break;
                }
                if (s.hash == h && storage_[s.id] == name) {
                    return s.id;
                }
            }
        }
        if ((storage_.size() + 1) * 10 >= slots_.size() * 7) {
            grow();
        }
        uint32_t id = static_cast<uint32_t>(storage_.size());
        storage_.emplace_back(name);  // deque: stable addresses
        size_t i = h & mask_;
        while (slots_[i].id != kNoName) {
            i = (i + 1) & mask_;
        }
        slots_[i] = Slot{h, id};
        return id;
    }

    /** Id for @p name, or kNoName if it was never interned. */
    uint32_t
    find(std::string_view name) const
    {
        if (slots_.empty()) {
            return kNoName;
        }
        const uint64_t h = fnv1a(name);
        for (size_t i = h & mask_;; i = (i + 1) & mask_) {
            const Slot& s = slots_[i];
            if (s.id == kNoName) {
                return kNoName;
            }
            if (s.hash == h && storage_[s.id] == name) {
                return s.id;
            }
        }
    }

    /** The interned spelling of @p id (must be a valid id). */
    const std::string& name(uint32_t id) const { return storage_[id]; }

    size_t size() const { return storage_.size(); }

  private:
    struct Slot {
        uint64_t hash = 0;
        uint32_t id = kNoName;  ///< kNoName marks an empty slot
    };

    void
    grow()
    {
        size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
        std::vector<Slot> next(cap);
        mask_ = cap - 1;
        for (const Slot& s : slots_) {
            if (s.id == kNoName) {
                continue;
            }
            size_t i = s.hash & mask_;
            while (next[i].id != kNoName) {
                i = (i + 1) & mask_;
            }
            next[i] = s;
        }
        slots_ = std::move(next);
    }

    std::deque<std::string> storage_;  ///< id -> name, addresses stable
    std::vector<Slot> slots_;          ///< open-addressing name index
    size_t mask_ = 0;
};

/** Result of resolving a path: the inode chain from root to target. */
struct ResolvedPath {
    std::vector<INode> chain;  ///< root first, target last
    /**
     * True when any symlink was dereferenced: the chain is then the
     * canonical post-resolution chain, and the *request* path must not
     * be used as a cache key for the target (invalidations go to the
     * canonical path, never the alias).
     */
    bool via_symlink = false;

    const INode& target() const { return chain.back(); }
};

/**
 * Whether resolution dereferences a symlink in the *final* position.
 * Intermediate symlink components are always followed. Reads that open
 * the target (read, ls, setattr, open-session) follow; ops that operate
 * on the link itself (stat/lstat, delete, rename source, hard-link
 * source) do not.
 */
enum class Follow : uint8_t { kFinal, kNoFinal };

/** Symlink dereference bound; exceeding it fails with ELOOP semantics. */
constexpr int kMaxSymlinkFollows = 8;

class NamespaceTree {
  public:
    /** Creates the tree containing only "/" owned by the superuser. */
    NamespaceTree();

    // ------------------------------------------------------------------
    // Resolution and reads
    // ------------------------------------------------------------------

    /**
     * Resolve @p path, checking execute permission on every ancestor
     * directory and following symlinks (bounded by kMaxSymlinkFollows;
     * ELOOP surfaces as FAILED_PRECONDITION). Returns the full inode
     * chain (root..target); after a symlink splice the chain is the
     * canonical post-resolution chain.
     */
    StatusOr<ResolvedPath> resolve(std::string_view path,
                                   const UserContext& user,
                                   Follow follow = Follow::kFinal) const;

    /** getattr with lstat semantics: a final symlink is not followed. */
    StatusOr<INode> stat(std::string_view path, const UserContext& user) const;

    /** Open-for-read on a file: requires read permission on the target. */
    StatusOr<INode> read_file(std::string_view path,
                              const UserContext& user) const;

    /**
     * List child names of a directory (requires read on the dir), in
     * lexicographic order.
     */
    StatusOr<std::vector<std::string>> list(std::string_view path,
                                            const UserContext& user) const;

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /** Create an empty file. Parent must exist and be writable. */
    StatusOr<INode> create_file(std::string_view path, const UserContext& user,
                                sim::SimTime now);

    /** Create a directory, making intermediate directories as needed. */
    StatusOr<INode> mkdirs(std::string_view path, const UserContext& user,
                           sim::SimTime now);

    /**
     * Delete a file, an empty directory, or (when @p recursive) a whole
     * subtree. @return number of inodes removed.
     */
    StatusOr<int64_t> remove(std::string_view path, const UserContext& user,
                             bool recursive, sim::SimTime now);

    /**
     * Rename @p src to @p dst. The destination must not exist; its parent
     * must. Moving a directory moves the whole subtree. A final symlink
     * at @p src moves the link itself.
     */
    Status rename(std::string_view src, std::string_view dst,
                  const UserContext& user, sim::SimTime now);

    /**
     * Hard link: add directory entry @p dst for the existing file at
     * @p src (files only; directories and symlinks are rejected). Bumps
     * the shared inode's link count.
     */
    StatusOr<INode> link(std::string_view src, std::string_view dst,
                         const UserContext& user, sim::SimTime now);

    /**
     * Create a symbolic link at @p link_path whose stored target is the
     * absolute path @p target. The target need not exist (dangling links
     * are legal); it is validated syntactically only.
     */
    StatusOr<INode> symlink(std::string_view link_path,
                            std::string_view target, const UserContext& user,
                            sim::SimTime now);

    /**
     * Update mode/owner/group/times per @p update's mask. Follows a
     * final symlink (chmod semantics). Owner or superuser only; chown
     * itself is superuser-only.
     */
    StatusOr<INode> setattr(std::string_view path, const AttrUpdate& update,
                            const UserContext& user, sim::SimTime now);

    // ------------------------------------------------------------------
    // File sessions, orphans, and GC (DESIGN.md §12)
    // ------------------------------------------------------------------

    /**
     * Open a leased session on the file at @p path (follows symlinks).
     * @p session_id must be globally unique; @p expiry is the absolute
     * lease expiry. While any session holds an inode, unlinking its last
     * directory entry orphans the inode instead of reclaiming it.
     */
    StatusOr<INode> open_session(std::string_view path, uint64_t session_id,
                                 sim::SimTime expiry, const UserContext& user);

    /**
     * Close a session. @return the number of orphaned inodes reclaimed
     * (1 when this was the last session holding an unlinked inode).
     */
    StatusOr<int64_t> close_session(uint64_t session_id, sim::SimTime now);

    struct GcResult {
        int64_t expired_sessions = 0;  ///< sessions pruned (lease passed)
        int64_t reclaimed = 0;         ///< orphaned inodes reclaimed
    };

    /**
     * Background prune pass: expire every session whose lease has passed
     * at @p now (crashed-client leftovers) and reclaim orphaned inodes
     * no live session holds.
     */
    GcResult gc_prune(sim::SimTime now);

    /** Namespace-wide counters (statfs). O(inodes) in metadata_bytes. */
    FsStats statfs() const;

    // ------------------------------------------------------------------
    // Introspection (used by stores, caches, and tests)
    // ------------------------------------------------------------------

    /** Inode by id, or nullptr. */
    const INode* get(INodeId id) const;

    /** Child inode id by (parent, name), or kInvalidId. */
    INodeId lookup_child(INodeId parent, std::string_view name) const;

    /**
     * Ids of all children of @p dir (empty for files/unknown ids),
     * ordered by child name.
     */
    std::vector<INodeId> children(INodeId dir) const;

    /**
     * Number of inodes in the subtree rooted at @p path (incl. root).
     * lstat semantics: a final symlink counts as one row, matching what
     * remove/rename would act on.
     */
    StatusOr<int64_t> subtree_size(std::string_view path,
                                   const UserContext& user) const;

    /** Reconstruct the absolute path of inode @p id. */
    std::string full_path(INodeId id) const;

    /** Total number of inodes (including "/"). */
    size_t inode_count() const { return nodes_.size(); }

    /** Sum of metadata_bytes over every inode (working-set size). */
    size_t total_metadata_bytes() const;

    /** Distinct component names interned so far (diagnostics). */
    size_t interned_names() const { return names_.size(); }

    /** Open (unexpired or not-yet-pruned) session count. */
    size_t open_session_count() const { return sessions_.size(); }

    /** Unlinked-but-held inodes awaiting session close or GC. */
    size_t orphan_count() const { return orphans_.size(); }

    /** Orphaned inode ids, ascending (test/oracle introspection). */
    std::vector<INodeId> orphan_ids() const;

    /** One open file session (test/oracle introspection). */
    struct SessionView {
        uint64_t id = 0;
        INodeId inode = kInvalidId;
        sim::SimTime expiry = 0;
    };

    /** All open sessions, ascending by session id. */
    std::vector<SessionView> sessions() const;

  private:
    /** Child map of one directory: interned name id -> inode id. */
    using ChildMap = std::unordered_map<uint32_t, INodeId>;

    /** One directory entry referencing a multi-link file. */
    struct LinkRef {
        INodeId parent = kInvalidId;
        uint32_t name = NameTable::kNoName;
    };

    StatusOr<ResolvedPath> resolve_ex(std::string_view path,
                                      const UserContext& user,
                                      bool follow_final, int depth) const;
    StatusOr<INode*> resolve_mutable_parent(std::string_view path,
                                            const UserContext& user);
    INode& add_node(INodeId parent, std::string_view name, INodeType type,
                    const UserContext& user, sim::SimTime now);
    /**
     * Release the inode whose directory entry (@p via_parent, @p via_name)
     * the caller has removed (or is removing): recurse into directories,
     * decrement multi-link files, orphan session-held files, and erase
     * everything else.
     */
    void reap(INodeId id, INodeId via_parent, uint32_t via_name,
              int64_t* removed, sim::SimTime now);
    /** Drop one (parent, name) entry from links_[id]; re-point the
     *  primary (INode::parent/name) if that entry was the primary. */
    void drop_link_record(INodeId id, INodeId parent, uint32_t name);
    int32_t open_count(INodeId id) const;
    bool is_ancestor(INodeId maybe_ancestor, INodeId node) const;

    std::unordered_map<INodeId, INode> nodes_;
    std::unordered_map<INodeId, ChildMap> children_;
    NameTable names_;
    /**
     * All directory entries of files with nlink > 1 (id-keyed link
     * resolution). Populated lazily on the first link(); single-link
     * files are fully described by INode::parent/name.
     */
    std::unordered_map<INodeId, std::vector<LinkRef>> links_;
    std::unordered_map<uint64_t, SessionView> sessions_;
    std::unordered_map<INodeId, int32_t> open_counts_;
    /** Ordered so GC reclaim sweeps deterministically. */
    std::set<INodeId> orphans_;
    INodeId next_id_ = kRootId + 1;
    /** Incremental type counts so statfs collection is O(1) per shard. */
    int64_t files_ = 0;
    int64_t dirs_ = 1;  ///< "/"
    int64_t symlinks_ = 0;
};

}  // namespace lfs::ns
