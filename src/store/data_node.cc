#include "src/store/data_node.h"

#include "src/sim/fault.h"

namespace lfs::store {

DataNode::DataNode(sim::Simulation& sim, sim::Rng rng, DataNodeConfig config,
                   int shard_id)
    : sim_(sim),
      rng_(rng),
      config_(config),
      shard_id_(shard_id),
      read_slots_(sim, config.concurrency),
      write_slots_(sim, config.concurrency)
{
}

sim::Task<void>
DataNode::stall_while_down()
{
    sim::FaultPlan* plan = sim_.fault_plan();
    if (plan == nullptr || !plan->store_shard_down(shard_id_)) {
        co_return;
    }
    plan->note_store_stall(shard_id_);
    while (plan->store_shard_down(shard_id_)) {
        co_await sim::delay(sim_, sim::msec(1));
    }
}

sim::Task<void>
DataNode::execute_read(int components)
{
    co_await stall_while_down();
    co_await read_slots_.acquire();
    sim::SemaphoreGuard guard(read_slots_);
    sim::SimTime service =
        rng_.uniform_duration(config_.read_service_min,
                              config_.read_service_max) +
        config_.per_component_cost * std::max(0, components - 1);
    co_await sim::delay(sim_, service);
    busy_time_ += service;
    reads_.add();
}

sim::Task<void>
DataNode::execute_write(int rows)
{
    co_await stall_while_down();
    co_await write_slots_.acquire();
    sim::SemaphoreGuard guard(write_slots_);
    sim::SimTime service =
        rng_.uniform_duration(config_.write_service_min,
                              config_.write_service_max) +
        config_.per_component_cost * std::max(0, rows - 1);
    co_await sim::delay(sim_, service);
    busy_time_ += service;
    writes_.add();
}

size_t
DataNode::queue_depth() const
{
    return read_slots_.waiting() + write_slots_.waiting();
}

}  // namespace lfs::store
