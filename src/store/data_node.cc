#include "src/store/data_node.h"

namespace lfs::store {

DataNode::DataNode(sim::Simulation& sim, sim::Rng rng, DataNodeConfig config)
    : sim_(sim),
      rng_(rng),
      config_(config),
      read_slots_(sim, config.concurrency),
      write_slots_(sim, config.concurrency)
{
}

sim::Task<void>
DataNode::execute_read(int components)
{
    co_await read_slots_.acquire();
    sim::SemaphoreGuard guard(read_slots_);
    sim::SimTime service =
        rng_.uniform_duration(config_.read_service_min,
                              config_.read_service_max) +
        config_.per_component_cost * std::max(0, components - 1);
    co_await sim::delay(sim_, service);
    busy_time_ += service;
    reads_.add();
}

sim::Task<void>
DataNode::execute_write(int rows)
{
    co_await write_slots_.acquire();
    sim::SemaphoreGuard guard(write_slots_);
    sim::SimTime service =
        rng_.uniform_duration(config_.write_service_min,
                              config_.write_service_max) +
        config_.per_component_cost * std::max(0, rows - 1);
    co_await sim::delay(sim_, service);
    busy_time_ += service;
    writes_.add();
}

size_t
DataNode::queue_depth() const
{
    return read_slots_.waiting() + write_slots_.waiting();
}

}  // namespace lfs::store
