#include "src/store/data_node.h"

#include <string>

#include "src/sim/fault.h"

namespace lfs::store {

namespace {

sim::Counter&
shed_counter(sim::Simulation& sim, int shard_id, const char* reason)
{
    return sim.metrics().counter("overload.store_shed",
                                 {{"shard", std::to_string(shard_id)},
                                  {"reason", reason}});
}

}  // namespace

DataNode::DataNode(sim::Simulation& sim, sim::Rng rng, DataNodeConfig config,
                   int shard_id)
    : sim_(sim),
      rng_(rng),
      config_(config),
      shard_id_(shard_id),
      read_slots_(sim, config.concurrency),
      write_slots_(sim, config.concurrency),
      shed_expired_(shed_counter(sim, shard_id, "expired")),
      shed_queue_full_(shed_counter(sim, shard_id, "queue_full")),
      shed_sojourn_(shed_counter(sim, shard_id, "sojourn")),
      shed_fail_fast_(shed_counter(sim, shard_id, "fail_fast")),
      sojourn_hist_(sim.metrics().histogram(
          "overload.store_sojourn", {{"shard", std::to_string(shard_id)}}))
{
}

sim::Task<void>
DataNode::stall_while_down()
{
    sim::FaultPlan* plan = sim_.fault_plan();
    if (plan == nullptr || !plan->store_shard_down(shard_id_)) {
        co_return;
    }
    plan->note_store_stall(shard_id_);
    while (plan->store_shard_down(shard_id_)) {
        co_await sim::delay(sim_, sim::msec(1));
    }
}

sim::Task<Status>
DataNode::admit_and_serve(sim::Semaphore& slots, sim::SimTime base_service,
                          sim::Counter& served, sim::SimTime deadline,
                          sim::LatencyLedger* ledger)
{
    sim::SimTime entry = sim_.now();
    sim::FaultPlan* plan = sim_.fault_plan();
    if (plan != nullptr && plan->store_shard_down(shard_id_)) {
        if (config_.fail_fast_when_down) {
            // Fail fast so the caller's circuit breaker can open instead
            // of the outage tying up NameNode concurrency slots.
            shed_fail_fast_.add();
            plan->note_store_stall(shard_id_);
            co_return Status::unavailable("store shard down: " +
                                          std::to_string(shard_id_));
        }
        co_await stall_while_down();
    }
    // Deadline admission: reject work whose remaining budget cannot cover
    // even the minimum service time — it is doomed, shed it now.
    if (deadline >= 0 && sim_.now() + base_service > deadline) {
        shed_expired_.add();
        co_return Status::deadline_exceeded("expired at store admission");
    }
    if (config_.max_queue_depth > 0 &&
        slots.waiting() >= static_cast<size_t>(config_.max_queue_depth)) {
        shed_queue_full_.add();
        co_return Status::resource_exhausted("store shard queue full");
    }
    sim::SimTime enqueued = sim_.now();
    co_await slots.acquire();
    sim::SemaphoreGuard guard(slots);
    sim::SimTime sojourn = sim_.now() - enqueued;
    sojourn_hist_.record(sojourn);
    // Expired-in-queue / CoDel shedding: drop stale work at dequeue, when
    // shedding still frees capacity for fresher requests.
    if (deadline >= 0 && sim_.now() + base_service > deadline) {
        shed_expired_.add();
        co_return Status::deadline_exceeded("expired in store queue");
    }
    if (config_.queue_sojourn_limit > 0 &&
        sojourn > config_.queue_sojourn_limit) {
        shed_sojourn_.add();
        co_return Status::resource_exhausted("store queue sojourn overrun");
    }
    sim::SimTime service = base_service;
    if (plan != nullptr) {
        double multiplier = plan->store_service_multiplier(shard_id_);
        if (multiplier != 1.0) {
            service = static_cast<sim::SimTime>(
                static_cast<double>(service) * multiplier);
        }
    }
    if (ledger != nullptr) {
        // Everything up to the service start — outage stalls plus the
        // slot sojourn — is queueing from the caller's perspective.
        ledger->add(sim::LatSeg::kStoreQueue, sim_.now() - entry);
    }
    co_await sim::delay(sim_, service);
    if (ledger != nullptr) {
        ledger->add(sim::LatSeg::kStoreService, service);
    }
    busy_time_ += service;
    served.add();
    co_return Status::make_ok();
}

sim::Task<Status>
DataNode::execute_read(int components, sim::SimTime deadline,
                       sim::LatencyLedger* ledger)
{
    sim::SimTime service =
        rng_.uniform_duration(config_.read_service_min,
                              config_.read_service_max) +
        config_.per_component_cost * std::max(0, components - 1);
    Status st = co_await admit_and_serve(read_slots_, service, reads_,
                                         deadline, ledger);
    co_return st;
}

sim::Task<Status>
DataNode::execute_write(int rows, sim::SimTime deadline,
                        sim::LatencyLedger* ledger)
{
    sim::SimTime service =
        rng_.uniform_duration(config_.write_service_min,
                              config_.write_service_max) +
        config_.per_component_cost * std::max(0, rows - 1);
    Status st = co_await admit_and_serve(write_slots_, service, writes_,
                                         deadline, ledger);
    co_return st;
}

size_t
DataNode::queue_depth() const
{
    return read_slots_.waiting() + write_slots_.waiting();
}

}  // namespace lfs::store
