/**
 * @file
 * A single storage shard of the persistent metadata store (one "NDB data
 * node"): a finite-concurrency queueing server whose service times define
 * the store's read/write capacity. Queueing delay under load is what caps
 * HopsFS throughput in the paper's experiments.
 */
#pragma once

#include <cstdint>

#include "src/sim/primitives.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

namespace lfs::store {

/** Service characteristics of a data node. */
struct DataNodeConfig {
    /**
     * Parallel transactions per class. Reads and writes run in separate
     * service pools (NDB separates fast read paths from its commit
     * machinery), so a read flood does not stall commits — matching the
     * paper's observation that HopsFS write latency stays moderate even
     * while its reads saturate the store.
     */
    int concurrency = 16;
    sim::SimTime read_service_min = sim::usec(1200);
    sim::SimTime read_service_max = sim::usec(1900);
    sim::SimTime write_service_min = sim::usec(3200);
    sim::SimTime write_service_max = sim::usec(4800);
    /** Extra service per additional path component in a batched resolve. */
    sim::SimTime per_component_cost = sim::usec(35);
};

class DataNode {
  public:
    /** @p shard_id identifies this shard to the FaultPlan outage hooks. */
    DataNode(sim::Simulation& sim, sim::Rng rng, DataNodeConfig config,
             int shard_id = 0);

    /**
     * Execute one read transaction that touches @p components inode rows
     * (a batched path resolve is a single transaction).
     */
    sim::Task<void> execute_read(int components = 1);

    /** Execute one write transaction touching @p rows inode rows. */
    sim::Task<void> execute_write(int rows = 1);

    uint64_t reads_served() const { return reads_.value(); }
    uint64_t writes_served() const { return writes_.value(); }

    /** Requests currently queued for a slot (read + write). */
    size_t queue_depth() const;

    /** Total busy server time accumulated (for utilization reporting). */
    sim::SimTime busy_time() const { return busy_time_; }

  private:
    /**
     * Block at admission while a FaultPlan outage window covers this
     * shard. Transactions queue (none are lost) and resume when the shard
     * comes back; the row state — the authoritative NamespaceTree owned
     * by the MetadataStore — is untouched by an outage.
     */
    sim::Task<void> stall_while_down();

    sim::Simulation& sim_;
    sim::Rng rng_;
    DataNodeConfig config_;
    int shard_id_;
    sim::Semaphore read_slots_;
    sim::Semaphore write_slots_;
    sim::Counter reads_;
    sim::Counter writes_;
    sim::SimTime busy_time_ = 0;
};

}  // namespace lfs::store
