/**
 * @file
 * A single storage shard of the persistent metadata store (one "NDB data
 * node"): a finite-concurrency queueing server whose service times define
 * the store's read/write capacity. Queueing delay under load is what caps
 * HopsFS throughput in the paper's experiments.
 *
 * Overload control (all knobs off by default): admission is bounded
 * (max_queue_depth), deadline-aware (an op whose remaining budget cannot
 * cover even the minimum service time is rejected, and one that expires
 * while queued is shed when it reaches the head), and CoDel-style (work
 * that waited longer than queue_sojourn_limit is shed at dequeue). During
 * a FaultPlan outage a shard can fail fast instead of stalling admissions
 * (fail_fast_when_down); a FaultPlan brownout multiplies service times.
 */
#pragma once

#include <cstdint>

#include "src/sim/latency.h"
#include "src/sim/primitives.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"
#include "src/util/status.h"

namespace lfs::store {

/** Service characteristics of a data node. */
struct DataNodeConfig {
    /**
     * Parallel transactions per class. Reads and writes run in separate
     * service pools (NDB separates fast read paths from its commit
     * machinery), so a read flood does not stall commits — matching the
     * paper's observation that HopsFS write latency stays moderate even
     * while its reads saturate the store.
     */
    int concurrency = 16;
    sim::SimTime read_service_min = sim::usec(1200);
    sim::SimTime read_service_max = sim::usec(1900);
    sim::SimTime write_service_min = sim::usec(3200);
    sim::SimTime write_service_max = sim::usec(4800);
    /** Extra service per additional path component in a batched resolve. */
    sim::SimTime per_component_cost = sim::usec(35);
    /** Bound on queued transactions per class (0 = unbounded). */
    int max_queue_depth = 0;
    /** CoDel-style sojourn bound: shed work that queued longer (0 = off). */
    sim::SimTime queue_sojourn_limit = 0;
    /** Fail admissions fast during an outage instead of stalling them. */
    bool fail_fast_when_down = false;
};

class DataNode {
  public:
    /** @p shard_id identifies this shard to the FaultPlan outage hooks. */
    DataNode(sim::Simulation& sim, sim::Rng rng, DataNodeConfig config,
             int shard_id = 0);

    /**
     * Execute one read transaction that touches @p components inode rows
     * (a batched path resolve is a single transaction). @p deadline is
     * the op's absolute deadline (-1 = none); expired or shed admissions
     * return DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED without consuming
     * service capacity.
     */
    sim::Task<Status> execute_read(int components = 1,
                                   sim::SimTime deadline = -1,
                                   sim::LatencyLedger* ledger = nullptr);

    /**
     * Execute one write transaction touching @p rows inode rows. When
     * @p ledger is non-null, the shard stamps its queue sojourn
     * (kStoreQueue) and service time (kStoreService) into it; callers
     * pass a frame-local ledger that outlives the call.
     */
    sim::Task<Status> execute_write(int rows = 1, sim::SimTime deadline = -1,
                                    sim::LatencyLedger* ledger = nullptr);

    uint64_t reads_served() const { return reads_.value(); }
    uint64_t writes_served() const { return writes_.value(); }

    /** Requests currently queued for a slot (read + write). */
    size_t queue_depth() const;

    /** Total busy server time accumulated (for utilization reporting). */
    sim::SimTime busy_time() const { return busy_time_; }

    /** Admissions shed by overload control (all reasons). */
    uint64_t shed_total() const
    {
        return shed_expired_.value() + shed_queue_full_.value() +
               shed_sojourn_.value() + shed_fail_fast_.value();
    }

  private:
    /**
     * Common admission + service path for both transaction classes.
     * @p base_service is the service time drawn for this transaction
     * (before any brownout multiplier).
     */
    sim::Task<Status> admit_and_serve(sim::Semaphore& slots,
                                      sim::SimTime base_service,
                                      sim::Counter& served,
                                      sim::SimTime deadline,
                                      sim::LatencyLedger* ledger);

    /**
     * Block at admission while a FaultPlan outage window covers this
     * shard. Transactions queue (none are lost) and resume when the shard
     * comes back; the row state — the authoritative NamespaceTree owned
     * by the MetadataStore — is untouched by an outage.
     */
    sim::Task<void> stall_while_down();

    sim::Simulation& sim_;
    sim::Rng rng_;
    DataNodeConfig config_;
    int shard_id_;
    sim::Semaphore read_slots_;
    sim::Semaphore write_slots_;
    sim::Counter reads_;
    sim::Counter writes_;
    sim::SimTime busy_time_ = 0;
    // Registry-owned shed counters + sojourn histogram ({shard} labels).
    sim::Counter& shed_expired_;
    sim::Counter& shed_queue_full_;
    sim::Counter& shed_sojourn_;
    sim::Counter& shed_fail_fast_;
    sim::Histogram& sojourn_hist_;
};

}  // namespace lfs::store
