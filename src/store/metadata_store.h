/**
 * @file
 * The persistent, strongly-consistent metadata store — the model of MySQL
 * Cluster NDB that HopsFS and λFS share (and, with different parameters,
 * of any sharded transactional metadata backend).
 *
 * The store owns the authoritative NamespaceTree and exposes *timed*
 * transactional operations: every call pays a NameNode<->store network
 * round trip, queues for a slot on the shard that owns the target's parent
 * directory, holds exclusive row locks for writes, and then applies the
 * semantic mutation atomically.
 */
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/namespace/namespace_tree.h"
#include "src/namespace/op.h"
#include "src/net/network.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"
#include "src/store/data_node.h"
#include "src/store/lock_table.h"
#include "src/util/overload.h"

namespace lfs::store {

/** Store-wide configuration. */
struct StoreConfig {
    int num_data_nodes = 4;
    DataNodeConfig data_node;
    /** Per-row costs of subtree batch transactions (Appendix D model). */
    sim::SimTime subtree_row_read_cost = sim::usec(4);
    sim::SimTime subtree_row_write_cost = sim::usec(14);
    /** Rows per subtree batch transaction. */
    int subtree_batch_size = 512;
    /** Delay between retries when a subtree lock conflicts. */
    sim::SimTime subtree_retry_delay = sim::msec(20);
    /**
     * Simulated cost of one namespace cold-tier page-in (DESIGN.md §15):
     * charged per fault a transaction incurs, modelling the intermediate
     * read from shared storage that a sub-resident namespace pays. Zero
     * faults (budget unset) charge nothing.
     */
    sim::SimTime fault_page_cost = sim::usec(250);
    /**
     * Per-shard circuit breakers: a rolling error window trips the shard
     * open, failing store transactions fast with UNAVAILABLE instead of
     * queueing them behind a struggling shard; half-open probes re-close
     * it once the shard recovers.
     */
    bool enable_circuit_breaker = false;
    util::BreakerConfig breaker;
};

class MetadataStore {
  public:
    MetadataStore(sim::Simulation& sim, net::Network& network, sim::Rng rng,
                  StoreConfig config = {});
    ~MetadataStore();

    /** Untimed access to the authoritative namespace (setup, verification). */
    ns::NamespaceTree& tree() { return tree_; }
    const ns::NamespaceTree& tree() const { return tree_; }

    LockTable& locks() { return locks_; }
    const StoreConfig& config() const { return config_; }

    // ------------------------------------------------------------------
    // Timed transactional operations (called by NameNodes)
    // ------------------------------------------------------------------

    /**
     * Coroutine-producing hook awaited while a transaction's locks are
     * held. λFS injects its coherence protocol's INV/ACK round here so no
     * other NameNode can read-and-cache between invalidation and commit
     * (§3.5: the leader "will have taken exclusive write-locks ... so it
     * will be impossible for another NameNode to read and cache the
     * metadata before it is updated").
     */
    using LockedHook = std::function<sim::Task<void>()>;

    /** NameNode-side execution parameters for a subtree operation. */
    struct SubtreeExecution {
        /** Awaited after the subtree flag is acquired (prefix INV round). */
        LockedHook after_lock;
        /**
         * Per-row NameNode processing cost added to each batch commit
         * (callers divide by their offload parallelism, Appendix D).
         */
        sim::SimTime per_row_nn_cost = 0;
    };

    /**
     * Execute a read operation (read/stat/ls) as one batched path-resolve
     * transaction (the "INode Hint Cache" single-round-trip query), under
     * shared row locks on the target and its parent. The result includes
     * the full resolved chain for caching.
     */
    sim::Task<OpResult> read_op(Op op);

    /**
     * Execute a single-inode write (create/mkdir/delete/mv): acquires
     * exclusive row locks in ascending-id order, awaits @p after_lock
     * (if any) while holding them, runs one write transaction on the
     * owning shard, applies the mutation, releases.
     */
    sim::Task<OpResult> write_op(Op op, LockedHook after_lock = nullptr);

    /**
     * Execute a subtree operation (recursive mv/delete) with the HopsFS
     * three-phase protocol: subtree-lock flag, quiesce (batched lock
     * walk), then batched sub-transactions (Appendix D).
     */
    sim::Task<OpResult> subtree_op(Op op, SubtreeExecution exec);
    sim::Task<OpResult> subtree_op(Op op);

    /** One quiesce walk over @p rows rows (exposed for λFS's protocol). */
    sim::Task<Status> quiesce_rows(const std::string& shard_key, int64_t rows,
                                   sim::LatencyLedger* ledger = nullptr);

    /** One batched subtree commit of @p rows rows on the owning shard. */
    sim::Task<Status> commit_subtree_batch(const std::string& shard_key,
                                           int64_t rows,
                                           sim::LatencyLedger* ledger =
                                               nullptr);

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    uint64_t total_reads() const;
    uint64_t total_writes() const;
    size_t queue_depth() const;

    /** Transactions shed by shard overload control (all shards/reasons). */
    uint64_t shed_total() const;

    /** Breaker open transitions across all shards (0 when disabled). */
    uint64_t breaker_opens() const;

    /** Transactions failed fast by an open breaker across all shards. */
    uint64_t breaker_fast_failures() const;

  private:
    /** Shard index owning metadata for paths under @p parent_path. */
    size_t shard_index(const std::string& parent_path) const;

    /**
     * shard_index(path::parent(path)) without materialising the parent
     * string: the parent's components are folded into the FNV-1a hash
     * directly. Op hot paths (read_op/write_op) pay zero allocations here.
     */
    size_t shard_index_of_parent(std::string_view path) const;

    /** Shard owning metadata for paths under @p parent_path. */
    DataNode& shard_for(const std::string& parent_path);

    /**
     * Consult shard @p idx's circuit breaker (no-op Ok when disabled).
     * Returns UNAVAILABLE without touching the shard while the breaker
     * is open and not yet probing.
     */
    Status breaker_admit(size_t idx);

    /** Report one shard transaction outcome to its breaker. */
    void breaker_record(size_t idx, const Status& st);

    /** Ids that a write on @p op must lock (parent, target, dst parent). */
    std::vector<ns::INodeId> write_lock_set(const Op& op) const;

    /** Ids that a read on @p p locks shared (parent and target). */
    std::vector<ns::INodeId> read_lock_set(const std::string& p) const;

    /**
     * Charge the simulated cost of namespace page-ins incurred since
     * @p faults_before (fault_page_cost each) and stamp kNsFault. A
     * fully-resident tree never faults, so this awaits nothing then.
     */
    sim::Task<void> charge_ns_faults(uint64_t faults_before,
                                     sim::LatencyLedger* ledger);

    /** Apply the semantic mutation (no timing). */
    OpResult apply_write(const Op& op);

    /** Perform the semantic read (no timing). */
    OpResult apply_read(const Op& op) const;

    sim::Simulation& sim_;
    net::Network& network_;
    StoreConfig config_;
    ns::NamespaceTree tree_;
    LockTable locks_;
    std::vector<std::unique_ptr<DataNode>> shards_;
    /** Per-shard breakers; empty when enable_circuit_breaker is off. */
    std::vector<std::unique_ptr<util::CircuitBreaker>> breakers_;
    // Registry-owned overload counters ({reason} labels).
    sim::Counter* rejected_expired_ = nullptr;
    sim::Counter* rejected_breaker_ = nullptr;
};

}  // namespace lfs::store
