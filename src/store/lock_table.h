/**
 * @file
 * Row-level and subtree-level locking for the persistent metadata store.
 *
 * HopsFS (and therefore λFS) serializes conflicting metadata transactions
 * with per-inode shared/exclusive row locks in NDB, acquired in a global
 * total order (ascending inode id) to avoid deadlock, plus application-
 * level subtree lock flags that give subtree operations isolation (§3.5,
 * Appendix D).
 */
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/namespace/inode.h"
#include "src/sim/primitives.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"
#include "src/util/status.h"

namespace lfs::store {

/** FIFO-fair shared/exclusive row locks keyed by inode id. */
class LockTable {
  public:
    explicit LockTable(sim::Simulation& sim) : sim_(sim) {}

    /** Acquire a shared lock on @p id (waits behind queued writers). */
    sim::Task<void> lock_shared(ns::INodeId id);

    /** Acquire an exclusive lock on @p id. */
    sim::Task<void> lock_exclusive(ns::INodeId id);

    /**
     * Acquire exclusive locks on all of @p ids in ascending-id order
     * (the deadlock-avoidance discipline). Duplicates are ignored.
     */
    sim::Task<void> lock_exclusive_ordered(std::vector<ns::INodeId> ids);

    void unlock_shared(ns::INodeId id);
    void unlock_exclusive(ns::INodeId id);
    void unlock_exclusive_all(const std::vector<ns::INodeId>& ids);

    /** True if @p id is currently locked in any mode. */
    bool is_locked(ns::INodeId id) const;

    // ------------------------------------------------------------------
    // Subtree operation locks (application-level flags)
    // ------------------------------------------------------------------

    /**
     * Try to flag a subtree operation rooted at @p root_path. Fails with
     * kFailedPrecondition if an active subtree operation overlaps (is an
     * ancestor or descendant of) the requested root.
     */
    Status try_acquire_subtree(const std::string& root_path);

    /** Clear the subtree flag (idempotent). */
    void release_subtree(const std::string& root_path);

    /** True if @p p lies inside (or contains) any active subtree op. */
    bool overlaps_active_subtree(const std::string& p) const;

    size_t active_subtree_ops() const { return subtree_roots_.size(); }

  private:
    struct Waiter {
        std::coroutine_handle<> handle;
        bool exclusive;
    };
    struct Row {
        int shared = 0;
        bool exclusive = false;
        std::deque<Waiter> waiters;
    };

    /** True if a lock of the given mode can be granted right now. */
    static bool grantable(const Row& row, bool exclusive);

    /** Wake queued waiters that can now be admitted (FIFO, batch shared). */
    void drain(ns::INodeId id);

    sim::Task<void> lock(ns::INodeId id, bool exclusive);

    sim::Simulation& sim_;
    std::unordered_map<ns::INodeId, Row> rows_;
    std::vector<std::string> subtree_roots_;
};

}  // namespace lfs::store
