#include "src/store/lock_table.h"

#include <algorithm>
#include <cassert>

#include "src/util/path.h"

namespace lfs::store {

bool
LockTable::grantable(const Row& row, bool exclusive)
{
    if (exclusive) {
        return row.shared == 0 && !row.exclusive;
    }
    // Shared: grantable unless a writer holds it or is queued ahead
    // (waiter-queue check happens at enqueue time; see lock()).
    return !row.exclusive;
}

sim::Task<void>
LockTable::lock(ns::INodeId id, bool exclusive)
{
    Row& row = rows_[id];
    // FIFO fairness: a request must queue if anyone is already waiting,
    // even if its mode would be compatible with current holders.
    if (row.waiters.empty() && grantable(row, exclusive)) {
        if (exclusive) {
            row.exclusive = true;
        } else {
            ++row.shared;
        }
        co_return;
    }
    struct Enqueue {
        Row& row;
        bool exclusive;
        bool await_ready() const noexcept { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            row.waiters.push_back(Waiter{h, exclusive});
        }
        void await_resume() const noexcept {}
    };
    co_await Enqueue{row, exclusive};
    // drain() granted the lock before resuming us.
}

sim::Task<void>
LockTable::lock_shared(ns::INodeId id)
{
    co_await lock(id, /*exclusive=*/false);
}

sim::Task<void>
LockTable::lock_exclusive(ns::INodeId id)
{
    co_await lock(id, /*exclusive=*/true);
}

sim::Task<void>
LockTable::lock_exclusive_ordered(std::vector<ns::INodeId> ids)
{
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (ns::INodeId id : ids) {
        co_await lock_exclusive(id);
    }
}

void
LockTable::drain(ns::INodeId id)
{
    auto it = rows_.find(id);
    if (it == rows_.end()) {
        return;
    }
    Row& row = it->second;
    // Grant the head waiter; if it is shared, batch all consecutive
    // shared waiters behind it.
    while (!row.waiters.empty() && grantable(row, row.waiters.front().exclusive)) {
        Waiter w = row.waiters.front();
        row.waiters.pop_front();
        if (w.exclusive) {
            row.exclusive = true;
        } else {
            ++row.shared;
        }
        sim_.schedule(0, w.handle);
        if (w.exclusive) {
            break;
        }
    }
    if (row.waiters.empty() && row.shared == 0 && !row.exclusive) {
        rows_.erase(it);
    }
}

void
LockTable::unlock_shared(ns::INodeId id)
{
    auto it = rows_.find(id);
    assert(it != rows_.end() && it->second.shared > 0);
    --it->second.shared;
    drain(id);
}

void
LockTable::unlock_exclusive(ns::INodeId id)
{
    auto it = rows_.find(id);
    assert(it != rows_.end() && it->second.exclusive);
    it->second.exclusive = false;
    drain(id);
}

void
LockTable::unlock_exclusive_all(const std::vector<ns::INodeId>& ids)
{
    std::vector<ns::INodeId> sorted(ids);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    // Release in reverse order (harmless either way; mirrors acquisition).
    for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
        unlock_exclusive(*it);
    }
}

bool
LockTable::is_locked(ns::INodeId id) const
{
    auto it = rows_.find(id);
    return it != rows_.end() &&
           (it->second.shared > 0 || it->second.exclusive);
}

Status
LockTable::try_acquire_subtree(const std::string& root_path)
{
    std::string normalized = path::normalize(root_path);
    for (const std::string& active : subtree_roots_) {
        if (path::is_under(normalized, active) ||
            path::is_under(active, normalized)) {
            return Status::failed_precondition(
                "overlapping subtree operation on " + active);
        }
    }
    subtree_roots_.push_back(normalized);
    return Status::make_ok();
}

void
LockTable::release_subtree(const std::string& root_path)
{
    std::string normalized = path::normalize(root_path);
    subtree_roots_.erase(
        std::remove(subtree_roots_.begin(), subtree_roots_.end(), normalized),
        subtree_roots_.end());
}

bool
LockTable::overlaps_active_subtree(const std::string& p) const
{
    for (const std::string& active : subtree_roots_) {
        if (path::is_under(p, active) || path::is_under(active, p)) {
            return true;
        }
    }
    return false;
}

}  // namespace lfs::store
