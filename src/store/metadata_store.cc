#include "src/store/metadata_store.h"

#include <algorithm>
#include <cassert>

#include "src/util/hash.h"
#include "src/util/path.h"

namespace lfs::store {

MetadataStore::MetadataStore(sim::Simulation& sim, net::Network& network,
                             sim::Rng rng, StoreConfig config)
    : sim_(sim), network_(network), config_(config), locks_(sim)
{
    shards_.reserve(static_cast<size_t>(config_.num_data_nodes));
    for (int i = 0; i < config_.num_data_nodes; ++i) {
        shards_.push_back(std::make_unique<DataNode>(
            sim, rng.fork(), config_.data_node, /*shard_id=*/i));
        DataNode* shard = shards_.back().get();
        sim_.metrics().register_callback_gauge(
            "store.queue_depth", {{"shard", std::to_string(i)}},
            [shard] { return static_cast<double>(shard->queue_depth()); },
            this);
    }
    sim_.metrics().register_callback_gauge(
        "store.queue_depth_total", {},
        [this] { return static_cast<double>(queue_depth()); }, this);
    sim_.metrics().register_callback_gauge(
        "store.reads", {},
        [this] { return static_cast<double>(total_reads()); }, this);
    sim_.metrics().register_callback_gauge(
        "store.writes", {},
        [this] { return static_cast<double>(total_writes()); }, this);
}

MetadataStore::~MetadataStore()
{
    sim_.metrics().remove_owner(this);
}

DataNode&
MetadataStore::shard_for(const std::string& parent_path)
{
    size_t idx = fnv1a(parent_path) % shards_.size();
    return *shards_[idx];
}

OpResult
MetadataStore::apply_read(const Op& op) const
{
    OpResult result;
    switch (op.type) {
      case OpType::kReadFile: {
        auto resolved = tree_.resolve(op.path, op.user);
        if (!resolved.ok()) {
            result.status = resolved.status();
            return result;
        }
        if (!resolved->target().is_file()) {
            result.status = Status::failed_precondition("not a file: " + op.path);
            return result;
        }
        result.chain = resolved->chain;
        result.inode = resolved->target();
        break;
      }
      case OpType::kStat: {
        auto resolved = tree_.resolve(op.path, op.user);
        if (!resolved.ok()) {
            result.status = resolved.status();
            return result;
        }
        result.chain = resolved->chain;
        result.inode = resolved->target();
        break;
      }
      case OpType::kLs: {
        auto resolved = tree_.resolve(op.path, op.user);
        if (!resolved.ok()) {
            result.status = resolved.status();
            return result;
        }
        result.chain = resolved->chain;
        result.inode = resolved->target();
        auto listed = tree_.list(op.path, op.user);
        if (!listed.ok()) {
            result.status = listed.status();
            return result;
        }
        result.children = listed.take();
        break;
      }
      default:
        result.status = Status::invalid_argument("not a read op");
        return result;
    }
    result.status = Status::make_ok();
    return result;
}

OpResult
MetadataStore::apply_write(const Op& op)
{
    OpResult result;
    sim::SimTime now = sim_.now();
    switch (op.type) {
      case OpType::kCreateFile: {
        auto created = tree_.create_file(op.path, op.user, now);
        if (!created.ok()) {
            result.status = created.status();
            return result;
        }
        result.inode = created.take();
        break;
      }
      case OpType::kMkdir: {
        auto made = tree_.mkdirs(op.path, op.user, now);
        if (!made.ok()) {
            result.status = made.status();
            return result;
        }
        result.inode = made.take();
        break;
      }
      case OpType::kDeleteFile: {
        auto removed = tree_.remove(op.path, op.user, /*recursive=*/false, now);
        if (!removed.ok()) {
            result.status = removed.status();
            return result;
        }
        result.inodes_touched = removed.take();
        break;
      }
      case OpType::kMv: {
        Status st = tree_.rename(op.path, op.dst, op.user, now);
        if (!st.ok()) {
            result.status = st;
            return result;
        }
        break;
      }
      case OpType::kSubtreeDelete: {
        auto removed = tree_.remove(op.path, op.user, /*recursive=*/true, now);
        if (!removed.ok()) {
            result.status = removed.status();
            return result;
        }
        result.inodes_touched = removed.take();
        break;
      }
      case OpType::kSubtreeMv: {
        Status st = tree_.rename(op.path, op.dst, op.user, now);
        if (!st.ok()) {
            result.status = st;
            return result;
        }
        break;
      }
      default:
        result.status = Status::invalid_argument("not a write op");
        return result;
    }
    result.status = Status::make_ok();
    return result;
}

std::vector<ns::INodeId>
MetadataStore::write_lock_set(const Op& op) const
{
    std::vector<ns::INodeId> ids;
    auto add_path = [&](const std::string& p) {
        ns::UserContext root;  // lock-set computation ignores permissions
        auto resolved = tree_.resolve(p, root);
        if (resolved.ok()) {
            ids.push_back(resolved->target().id);
        }
    };
    add_path(path::parent(op.path));
    add_path(op.path);
    if (op.type == OpType::kMv || op.type == OpType::kSubtreeMv) {
        add_path(path::parent(op.dst));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

std::vector<ns::INodeId>
MetadataStore::read_lock_set(const std::string& p) const
{
    std::vector<ns::INodeId> ids;
    ns::UserContext root;
    auto resolved = tree_.resolve(p, root);
    if (resolved.ok()) {
        ids.push_back(resolved->target().id);
        if (resolved->chain.size() > 1) {
            ids.push_back(resolved->chain[resolved->chain.size() - 2].id);
        }
    } else {
        auto parent_resolved = tree_.resolve(path::parent(p), root);
        if (parent_resolved.ok()) {
            ids.push_back(parent_resolved->target().id);
        }
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

sim::Task<OpResult>
MetadataStore::read_op(Op op)
{
    sim::Span txn_span =
        sim_.tracer().start_span("store", "read_txn", op.trace);
    co_await network_.transfer(net::LatencyClass::kStore);
    OpResult result;
    while (true) {
        // One lock_wait span per retry round; move-assign ends the
        // previous round's span.
        sim::Span lock_span = sim_.tracer().start_span("store", "lock_wait",
                                                       txn_span.context());
        // While a subtree operation is in flight over this path, reads
        // block behind it (the subtree flag acts as an intention lock).
        while (locks_.overlaps_active_subtree(op.path)) {
            co_await sim::delay(sim_, config_.subtree_retry_delay);
        }
        // Shared row locks on target + parent serialize the read against
        // concurrent writers, so a reader can never cache a value that a
        // lock-holding writer is about to overwrite.
        std::vector<ns::INodeId> lock_ids = read_lock_set(op.path);
        for (ns::INodeId id : lock_ids) {
            co_await locks_.lock_shared(id);
        }
        lock_span.end();
        DataNode& shard = shard_for(path::parent(op.path));
        co_await shard.execute_read(path::depth(op.path) + 1);
        result = apply_read(op);
        for (ns::INodeId id : lock_ids) {
            locks_.unlock_shared(id);
        }
        // A subtree operation may have flagged this path while the read
        // was in flight (its quiesce phase drains readers like us). The
        // result would be cached *after* the subtree INV round cleared
        // the caches — stale forever — so retry behind the flag instead.
        if (!locks_.overlaps_active_subtree(op.path)) {
            break;
        }
    }
    co_await network_.transfer(net::LatencyClass::kStore);
    co_return result;
}

sim::Task<OpResult>
MetadataStore::write_op(Op op, LockedHook after_lock)
{
    sim::Span txn_span =
        sim_.tracer().start_span("store", "write_txn", op.trace);
    co_await network_.transfer(net::LatencyClass::kStore);
    sim::Span lock_span =
        sim_.tracer().start_span("store", "lock_wait", txn_span.context());
    while (locks_.overlaps_active_subtree(op.path) ||
           (op.type == OpType::kMv &&
            locks_.overlaps_active_subtree(op.dst))) {
        co_await sim::delay(sim_, config_.subtree_retry_delay);
    }
    std::vector<ns::INodeId> lock_ids = write_lock_set(op);
    co_await locks_.lock_exclusive_ordered(lock_ids);
    lock_span.end();
    if (after_lock) {
        co_await after_lock();
    }
    DataNode& shard = shard_for(path::parent(op.path));
    co_await shard.execute_write(static_cast<int>(lock_ids.size()));
    OpResult result = apply_write(op);
    locks_.unlock_exclusive_all(lock_ids);
    co_await network_.transfer(net::LatencyClass::kStore);
    co_return result;
}

sim::Task<void>
MetadataStore::quiesce_rows(const std::string& shard_key, int64_t rows)
{
    DataNode& shard = shard_for(shard_key);
    int batch = config_.subtree_batch_size;
    for (int64_t done = 0; done < rows; done += batch) {
        int64_t n = std::min<int64_t>(batch, rows - done);
        co_await shard.execute_read(1);
        co_await sim::delay(sim_, config_.subtree_row_read_cost * n);
    }
}

sim::Task<void>
MetadataStore::commit_subtree_batch(const std::string& shard_key, int64_t rows)
{
    DataNode& shard = shard_for(shard_key);
    co_await shard.execute_write(1);
    co_await sim::delay(sim_, config_.subtree_row_write_cost * rows);
}

sim::Task<OpResult>
MetadataStore::subtree_op(Op op)
{
    OpResult result = co_await subtree_op(std::move(op), SubtreeExecution{});
    co_return result;
}

sim::Task<OpResult>
MetadataStore::subtree_op(Op op, SubtreeExecution exec)
{
    sim::Span txn_span =
        sim_.tracer().start_span("store", "subtree_txn", op.trace);
    co_await network_.transfer(net::LatencyClass::kStore);

    // Phase 1: set the subtree-lock flag; retry on overlap.
    sim::Span lock_span =
        sim_.tracer().start_span("store", "lock_wait", txn_span.context());
    while (true) {
        Status st = locks_.try_acquire_subtree(op.path);
        if (st.ok()) {
            break;
        }
        co_await sim::delay(sim_, config_.subtree_retry_delay);
    }
    lock_span.end();

    OpResult result;
    ns::UserContext root;
    auto size = tree_.subtree_size(op.path, root);
    if (!size.ok()) {
        locks_.release_subtree(op.path);
        result.status = size.status();
        co_await network_.transfer(net::LatencyClass::kStore);
        co_return result;
    }
    int64_t rows = size.take();

    // λFS: prefix-invalidation round, while the subtree flag blocks
    // conflicting reads/writes.
    if (exec.after_lock) {
        co_await exec.after_lock();
    }

    // Phase 2: quiesce the subtree (ordered lock walk).
    sim::Span quiesce_span =
        sim_.tracer().start_span("store", "quiesce", txn_span.context());
    quiesce_span.annotate("rows", rows);
    co_await quiesce_rows(op.path, rows);
    quiesce_span.end();

    // Phase 3: batched sub-transactions, each preceded by the calling
    // NameNode cluster's own batch processing cost.
    sim::Span commit_span = sim_.tracer().start_span(
        "store", "commit_batches", txn_span.context());
    commit_span.annotate("rows", rows);
    int batch = config_.subtree_batch_size;
    for (int64_t done = 0; done < rows; done += batch) {
        int64_t n = std::min<int64_t>(batch, rows - done);
        if (exec.per_row_nn_cost > 0) {
            co_await sim::delay(sim_, exec.per_row_nn_cost * n);
        }
        co_await commit_subtree_batch(op.path, n);
    }
    commit_span.end();

    result = apply_write(op);
    result.inodes_touched = rows;
    locks_.release_subtree(op.path);
    co_await network_.transfer(net::LatencyClass::kStore);
    co_return result;
}

uint64_t
MetadataStore::total_reads() const
{
    uint64_t total = 0;
    for (const auto& shard : shards_) {
        total += shard->reads_served();
    }
    return total;
}

uint64_t
MetadataStore::total_writes() const
{
    uint64_t total = 0;
    for (const auto& shard : shards_) {
        total += shard->writes_served();
    }
    return total;
}

size_t
MetadataStore::queue_depth() const
{
    size_t total = 0;
    for (const auto& shard : shards_) {
        total += shard->queue_depth();
    }
    return total;
}

}  // namespace lfs::store
