#include "src/store/metadata_store.h"

#include <algorithm>
#include <cassert>

#include "src/util/hash.h"
#include "src/util/path.h"

namespace lfs::store {

MetadataStore::MetadataStore(sim::Simulation& sim, net::Network& network,
                             sim::Rng rng, StoreConfig config)
    : sim_(sim), network_(network), config_(config), locks_(sim)
{
    shards_.reserve(static_cast<size_t>(config_.num_data_nodes));
    for (int i = 0; i < config_.num_data_nodes; ++i) {
        shards_.push_back(std::make_unique<DataNode>(
            sim, rng.fork(), config_.data_node, /*shard_id=*/i));
        DataNode* shard = shards_.back().get();
        sim_.metrics().register_callback_gauge(
            "store.queue_depth", {{"shard", std::to_string(i)}},
            [shard] { return static_cast<double>(shard->queue_depth()); },
            this);
    }
    sim_.metrics().register_callback_gauge(
        "store.queue_depth_total", {},
        [this] { return static_cast<double>(queue_depth()); }, this);
    sim_.metrics().register_callback_gauge(
        "store.reads", {},
        [this] { return static_cast<double>(total_reads()); }, this);
    sim_.metrics().register_callback_gauge(
        "store.writes", {},
        [this] { return static_cast<double>(total_writes()); }, this);
    // Two-tier namespace residency gauges (DESIGN.md §15). Sampled on
    // metric dumps only; residency_stats() is O(directories).
    sim_.metrics().register_callback_gauge(
        "ns.resident_inodes", {},
        [this] {
            return static_cast<double>(
                tree_.residency_stats().resident_inodes);
        },
        this);
    sim_.metrics().register_callback_gauge(
        "ns.cold_inodes", {},
        [this] {
            return static_cast<double>(tree_.residency_stats().cold_inodes);
        },
        this);
    sim_.metrics().register_callback_gauge(
        "ns.resident_bytes", {},
        [this] {
            return static_cast<double>(
                tree_.residency_stats().resident_bytes);
        },
        this);
    sim_.metrics().register_callback_gauge(
        "ns.cold_bytes", {},
        [this] {
            return static_cast<double>(tree_.residency_stats().cold_bytes);
        },
        this);
    sim_.metrics().register_callback_gauge(
        "ns.bytes_per_inode", {},
        [this] { return tree_.residency_stats().bytes_per_inode; }, this);
    sim_.metrics().register_callback_gauge(
        "ns.pagein", {},
        [this] { return static_cast<double>(tree_.pageins()); }, this);
    sim_.metrics().register_callback_gauge(
        "ns.pageout", {},
        [this] { return static_cast<double>(tree_.pageouts()); }, this);
    rejected_expired_ = &sim_.metrics().counter("overload.store_rejected",
                                                {{"reason", "expired"}});
    rejected_breaker_ = &sim_.metrics().counter("overload.store_rejected",
                                                {{"reason", "breaker_open"}});
    if (config_.enable_circuit_breaker) {
        breakers_.reserve(shards_.size());
        for (int i = 0; i < config_.num_data_nodes; ++i) {
            breakers_.push_back(
                std::make_unique<util::CircuitBreaker>(config_.breaker));
            util::CircuitBreaker* breaker = breakers_.back().get();
            sim_.metrics().register_callback_gauge(
                "overload.breaker_state", {{"shard", std::to_string(i)}},
                [breaker] {
                    return static_cast<double>(
                        static_cast<int>(breaker->state()));
                },
                this);
        }
    }
}

MetadataStore::~MetadataStore()
{
    sim_.metrics().remove_owner(this);
}

size_t
MetadataStore::shard_index(const std::string& parent_path) const
{
    return fnv1a(parent_path) % shards_.size();
}

size_t
MetadataStore::shard_index_of_parent(std::string_view p) const
{
    // Hash "/comp" for every component but the last — byte-identical to
    // fnv1a(path::parent(p)), including the bare "/" root-parent case.
    uint64_t h = kFnv1aBasis;
    std::string_view prev;
    bool have_prev = false;
    bool hashed = false;
    for (std::string_view c : path::PathView(p)) {
        if (have_prev) {
            h = fnv1a_mix(h, "/");
            h = fnv1a_mix(h, prev);
            hashed = true;
        }
        prev = c;
        have_prev = true;
    }
    if (!hashed) {
        h = fnv1a_mix(h, "/");
    }
    return h % shards_.size();
}

DataNode&
MetadataStore::shard_for(const std::string& parent_path)
{
    return *shards_[shard_index(parent_path)];
}

Status
MetadataStore::breaker_admit(size_t idx)
{
    if (breakers_.empty()) {
        return Status::make_ok();
    }
    if (!breakers_[idx]->allow(sim_.now())) {
        rejected_breaker_->add();
        return Status::unavailable("store breaker open: shard " +
                                   std::to_string(idx));
    }
    return Status::make_ok();
}

void
MetadataStore::breaker_record(size_t idx, const Status& st)
{
    if (breakers_.empty()) {
        return;
    }
    if (st.ok()) {
        breakers_[idx]->record_success(sim_.now());
    } else {
        breakers_[idx]->record_failure(sim_.now());
    }
}

OpResult
MetadataStore::apply_read(const Op& op) const
{
    OpResult result;
    switch (op.type) {
      case OpType::kReadFile: {
        auto resolved = tree_.resolve(op.path, op.user);
        if (!resolved.ok()) {
            result.status = resolved.status();
            return result;
        }
        if (!resolved->target().is_file()) {
            result.status = Status::failed_precondition("not a file: " + op.path);
            return result;
        }
        result.chain = resolved->chain;
        result.inode = resolved->target();
        result.via_symlink = resolved->via_symlink;
        break;
      }
      case OpType::kStat: {
        // lstat semantics: a final symlink stats the link itself.
        auto resolved = tree_.resolve(op.path, op.user, ns::Follow::kNoFinal);
        if (!resolved.ok()) {
            result.status = resolved.status();
            return result;
        }
        result.chain = resolved->chain;
        result.inode = resolved->target();
        result.via_symlink = resolved->via_symlink;
        break;
      }
      case OpType::kLs: {
        auto resolved = tree_.resolve(op.path, op.user);
        if (!resolved.ok()) {
            result.status = resolved.status();
            return result;
        }
        result.chain = resolved->chain;
        result.inode = resolved->target();
        result.via_symlink = resolved->via_symlink;
        auto listed = tree_.list(op.path, op.user);
        if (!listed.ok()) {
            result.status = listed.status();
            return result;
        }
        result.children = listed.take();
        break;
      }
      case OpType::kStatFs: {
        result.stats = tree_.statfs();
        result.inode = *tree_.get(ns::kRootId);
        result.inodes_touched = result.stats.inodes;
        break;
      }
      default:
        result.status = Status::invalid_argument("not a read op");
        return result;
    }
    result.status = Status::make_ok();
    return result;
}

OpResult
MetadataStore::apply_write(const Op& op)
{
    OpResult result;
    sim::SimTime now = sim_.now();
    switch (op.type) {
      case OpType::kCreateFile: {
        auto created = tree_.create_file(op.path, op.user, now);
        if (!created.ok()) {
            result.status = created.status();
            return result;
        }
        result.inode = created.take();
        break;
      }
      case OpType::kMkdir: {
        auto made = tree_.mkdirs(op.path, op.user, now);
        if (!made.ok()) {
            result.status = made.status();
            return result;
        }
        result.inode = made.take();
        break;
      }
      case OpType::kDeleteFile: {
        auto removed = tree_.remove(op.path, op.user, /*recursive=*/false, now);
        if (!removed.ok()) {
            result.status = removed.status();
            return result;
        }
        result.inodes_touched = removed.take();
        break;
      }
      case OpType::kMv: {
        Status st = tree_.rename(op.path, op.dst, op.user, now);
        if (!st.ok()) {
            result.status = st;
            return result;
        }
        break;
      }
      case OpType::kSubtreeDelete: {
        auto removed = tree_.remove(op.path, op.user, /*recursive=*/true, now);
        if (!removed.ok()) {
            result.status = removed.status();
            return result;
        }
        result.inodes_touched = removed.take();
        break;
      }
      case OpType::kSubtreeMv: {
        Status st = tree_.rename(op.path, op.dst, op.user, now);
        if (!st.ok()) {
            result.status = st;
            return result;
        }
        break;
      }
      case OpType::kHardLink: {
        auto linked = tree_.link(op.path, op.dst, op.user, now);
        if (!linked.ok()) {
            result.status = linked.status();
            return result;
        }
        result.inode = linked.take();
        break;
      }
      case OpType::kSymlink: {
        auto made = tree_.symlink(op.path, op.dst, op.user, now);
        if (!made.ok()) {
            result.status = made.status();
            return result;
        }
        result.inode = made.take();
        break;
      }
      case OpType::kSetAttr: {
        auto updated = tree_.setattr(op.path, op.attr, op.user, now);
        if (!updated.ok()) {
            result.status = updated.status();
            return result;
        }
        result.inode = updated.take();
        break;
      }
      case OpType::kOpenSession: {
        auto opened = tree_.open_session(op.path, op.session_id,
                                         now + op.lease_ttl, op.user);
        if (!opened.ok()) {
            result.status = opened.status();
            return result;
        }
        result.inode = opened.take();
        break;
      }
      case OpType::kCloseSession: {
        auto closed = tree_.close_session(op.session_id, now);
        if (!closed.ok()) {
            result.status = closed.status();
            return result;
        }
        result.inodes_touched = closed.take();
        break;
      }
      case OpType::kGcPrune: {
        ns::NamespaceTree::GcResult gc = tree_.gc_prune(now);
        result.inodes_touched = gc.reclaimed;
        result.stats = tree_.statfs();
        break;
      }
      default:
        result.status = Status::invalid_argument("not a write op");
        return result;
    }
    result.status = Status::make_ok();
    return result;
}

std::vector<ns::INodeId>
MetadataStore::write_lock_set(const Op& op) const
{
    // Id-centric resolve: lock-set computation walks inode ids and never
    // materializes INode views (the chains were thrown away here before).
    std::vector<ns::INodeId> ids;
    ns::IdChain chain;
    auto add_path = [&](const std::string& p) {
        ns::UserContext root;  // lock-set computation ignores permissions
        if (tree_.resolve_ids(p, root, ns::Follow::kFinal, &chain).ok()) {
            ids.push_back(chain.back());
        }
    };
    add_path(path::parent(op.path));
    add_path(op.path);
    if (has_dst_path(op.type)) {
        add_path(path::parent(op.dst));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

std::vector<ns::INodeId>
MetadataStore::read_lock_set(const std::string& p) const
{
    std::vector<ns::INodeId> ids;
    ns::UserContext root;
    ns::IdChain chain;
    if (tree_.resolve_ids(p, root, ns::Follow::kFinal, &chain).ok()) {
        ids.push_back(chain.back());
        if (chain.size() > 1) {
            ids.push_back(chain[chain.size() - 2]);
        }
    } else if (tree_
                   .resolve_ids(path::parent(p), root, ns::Follow::kFinal,
                                &chain)
                   .ok()) {
        ids.push_back(chain.back());
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

sim::Task<void>
MetadataStore::charge_ns_faults(uint64_t faults_before,
                                sim::LatencyLedger* ledger)
{
    uint64_t faults = tree_.pageins() - faults_before;
    if (faults == 0 || config_.fault_page_cost <= 0) {
        co_return;
    }
    sim::SimTime cost =
        config_.fault_page_cost * static_cast<sim::SimTime>(faults);
    co_await sim::delay(sim_, cost);
    if (ledger != nullptr) {
        ledger->add(sim::LatSeg::kNsFault, cost);
    }
}

sim::Task<OpResult>
MetadataStore::read_op(Op op)
{
    sim::Span txn_span =
        sim_.tracer().start_span("store", "read_txn", op.trace);
    const bool attr = sim_.attribution();
    sim::LatencyLedger led;
    sim::SimTime t0 = sim_.now();
    co_await network_.transfer(net::LatencyClass::kStore);
    if (attr) {
        led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
    }
    OpResult result;
    size_t shard_idx = shard_index_of_parent(op.path);
    // Admission checks before any lock or coherence work: a tripped
    // breaker or an already-expired deadline fails fast, paying only the
    // network round trip.
    result.status = breaker_admit(shard_idx);
    if (!result.status.ok()) {
        txn_span.annotate("shed", "breaker_open");
        t0 = sim_.now();
        co_await network_.transfer(net::LatencyClass::kStore);
        if (attr) {
            led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
            result.ledger = led;
        }
        co_return result;
    }
    if (op_expired(op, sim_.now())) {
        rejected_expired_->add();
        txn_span.annotate("shed", "expired");
        result.status = Status::deadline_exceeded("expired at store entry");
        t0 = sim_.now();
        co_await network_.transfer(net::LatencyClass::kStore);
        if (attr) {
            led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
            result.ledger = led;
        }
        co_return result;
    }
    uint64_t faults_before = tree_.pageins();
    while (true) {
        // One lock_wait span per retry round; move-assign ends the
        // previous round's span.
        sim::Span lock_span = sim_.tracer().start_span("store", "lock_wait",
                                                       txn_span.context());
        sim::SimTime lock_start = sim_.now();
        // While a subtree operation is in flight over this path, reads
        // block behind it (the subtree flag acts as an intention lock).
        while (locks_.overlaps_active_subtree(op.path)) {
            co_await sim::delay(sim_, config_.subtree_retry_delay);
        }
        // Shared row locks on target + parent serialize the read against
        // concurrent writers, so a reader can never cache a value that a
        // lock-holding writer is about to overwrite.
        std::vector<ns::INodeId> lock_ids = read_lock_set(op.path);
        for (ns::INodeId id : lock_ids) {
            co_await locks_.lock_shared(id);
        }
        lock_span.end();
        if (attr) {
            led.add(sim::LatSeg::kStoreLockWait, sim_.now() - lock_start);
        }
        Status st;
        if (op.type == OpType::kStatFs) {
            // statfs collects one aggregate row from every shard — it
            // pays a per-shard read, not an O(inodes) scan.
            st = Status::make_ok();
            for (auto& shard : shards_) {
                st = co_await shard->execute_read(1, op.deadline,
                                                  attr ? &led : nullptr);
                if (!st.ok()) {
                    break;
                }
            }
        } else {
            DataNode& shard = *shards_[shard_idx];
            st = co_await shard.execute_read(path::depth(op.path) + 1,
                                             op.deadline,
                                             attr ? &led : nullptr);
        }
        breaker_record(shard_idx, st);
        if (!st.ok()) {
            for (ns::INodeId id : lock_ids) {
                locks_.unlock_shared(id);
            }
            txn_span.annotate("shed", code_name(st.code()));
            result.status = st;
            break;
        }
        result = apply_read(op);
        for (ns::INodeId id : lock_ids) {
            locks_.unlock_shared(id);
        }
        // A subtree operation may have flagged this path while the read
        // was in flight (its quiesce phase drains readers like us). The
        // result would be cached *after* the subtree INV round cleared
        // the caches — stale forever — so retry behind the flag instead.
        if (!locks_.overlaps_active_subtree(op.path)) {
            break;
        }
    }
    co_await charge_ns_faults(faults_before, attr ? &led : nullptr);
    t0 = sim_.now();
    co_await network_.transfer(net::LatencyClass::kStore);
    if (attr) {
        led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
        result.ledger = led;
    }
    co_return result;
}

sim::Task<OpResult>
MetadataStore::write_op(Op op, LockedHook after_lock)
{
    sim::Span txn_span =
        sim_.tracer().start_span("store", "write_txn", op.trace);
    const bool attr = sim_.attribution();
    sim::LatencyLedger led;
    sim::SimTime t0 = sim_.now();
    co_await network_.transfer(net::LatencyClass::kStore);
    if (attr) {
        led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
    }
    size_t shard_idx = shard_index_of_parent(op.path);
    // Admission checks before waiting on subtree flags, acquiring row
    // locks, or running the coherence round — doomed work sheds here.
    Status admit = breaker_admit(shard_idx);
    if (!admit.ok()) {
        txn_span.annotate("shed", "breaker_open");
        OpResult shed;
        shed.status = admit;
        t0 = sim_.now();
        co_await network_.transfer(net::LatencyClass::kStore);
        if (attr) {
            led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
            shed.ledger = led;
        }
        co_return shed;
    }
    if (op_expired(op, sim_.now())) {
        rejected_expired_->add();
        txn_span.annotate("shed", "expired");
        OpResult shed;
        shed.status = Status::deadline_exceeded("expired at store entry");
        t0 = sim_.now();
        co_await network_.transfer(net::LatencyClass::kStore);
        if (attr) {
            led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
            shed.ledger = led;
        }
        co_return shed;
    }
    uint64_t faults_before = tree_.pageins();
    sim::Span lock_span =
        sim_.tracer().start_span("store", "lock_wait", txn_span.context());
    sim::SimTime lock_start = sim_.now();
    while (locks_.overlaps_active_subtree(op.path) ||
           (has_dst_path(op.type) &&
            locks_.overlaps_active_subtree(op.dst))) {
        co_await sim::delay(sim_, config_.subtree_retry_delay);
    }
    std::vector<ns::INodeId> lock_ids = write_lock_set(op);
    co_await locks_.lock_exclusive_ordered(lock_ids);
    lock_span.end();
    if (attr) {
        led.add(sim::LatSeg::kStoreLockWait, sim_.now() - lock_start);
    }
    if (after_lock) {
        // The coherence INV/ACK round is attributed here — around the
        // hook await, never inside the coordinator — so it is stamped
        // exactly once per write.
        sim::SimTime coh_start = sim_.now();
        co_await after_lock();
        if (attr) {
            led.add(sim::LatSeg::kCoherence, sim_.now() - coh_start);
        }
    }
    DataNode& shard = *shards_[shard_idx];
    Status st = co_await shard.execute_write(
        static_cast<int>(lock_ids.size()), op.deadline,
        attr ? &led : nullptr);
    breaker_record(shard_idx, st);
    if (!st.ok()) {
        locks_.unlock_exclusive_all(lock_ids);
        txn_span.annotate("shed", code_name(st.code()));
        OpResult shed;
        shed.status = st;
        t0 = sim_.now();
        co_await network_.transfer(net::LatencyClass::kStore);
        if (attr) {
            led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
            shed.ledger = led;
        }
        co_return shed;
    }
    OpResult result = apply_write(op);
    // Faults are charged while the row locks are held: a sub-resident
    // namespace pays its page-ins inside the transaction window.
    co_await charge_ns_faults(faults_before, attr ? &led : nullptr);
    locks_.unlock_exclusive_all(lock_ids);
    t0 = sim_.now();
    co_await network_.transfer(net::LatencyClass::kStore);
    if (attr) {
        led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
        result.ledger = led;
    }
    co_return result;
}

sim::Task<Status>
MetadataStore::quiesce_rows(const std::string& shard_key, int64_t rows,
                            sim::LatencyLedger* ledger)
{
    DataNode& shard = shard_for(shard_key);
    int batch = config_.subtree_batch_size;
    for (int64_t done = 0; done < rows; done += batch) {
        int64_t n = std::min<int64_t>(batch, rows - done);
        Status st = co_await shard.execute_read(1, -1, ledger);
        if (!st.ok()) {
            co_return st;
        }
        co_await sim::delay(sim_, config_.subtree_row_read_cost * n);
        if (ledger != nullptr) {
            ledger->add(sim::LatSeg::kStoreService,
                        config_.subtree_row_read_cost * n);
        }
    }
    co_return Status::make_ok();
}

sim::Task<Status>
MetadataStore::commit_subtree_batch(const std::string& shard_key, int64_t rows,
                                    sim::LatencyLedger* ledger)
{
    DataNode& shard = shard_for(shard_key);
    Status st = co_await shard.execute_write(1, -1, ledger);
    if (!st.ok()) {
        co_return st;
    }
    co_await sim::delay(sim_, config_.subtree_row_write_cost * rows);
    if (ledger != nullptr) {
        ledger->add(sim::LatSeg::kStoreService,
                    config_.subtree_row_write_cost * rows);
    }
    co_return Status::make_ok();
}

sim::Task<OpResult>
MetadataStore::subtree_op(Op op)
{
    OpResult result = co_await subtree_op(std::move(op), SubtreeExecution{});
    co_return result;
}

sim::Task<OpResult>
MetadataStore::subtree_op(Op op, SubtreeExecution exec)
{
    sim::Span txn_span =
        sim_.tracer().start_span("store", "subtree_txn", op.trace);
    const bool attr = sim_.attribution();
    sim::LatencyLedger led;
    sim::SimTime t0 = sim_.now();
    co_await network_.transfer(net::LatencyClass::kStore);
    if (attr) {
        led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
    }

    // Phase 1: set the subtree-lock flag; retry on overlap.
    sim::Span lock_span =
        sim_.tracer().start_span("store", "lock_wait", txn_span.context());
    sim::SimTime lock_start = sim_.now();
    while (true) {
        Status st = locks_.try_acquire_subtree(op.path);
        if (st.ok()) {
            break;
        }
        co_await sim::delay(sim_, config_.subtree_retry_delay);
    }
    lock_span.end();
    if (attr) {
        led.add(sim::LatSeg::kStoreLockWait, sim_.now() - lock_start);
    }

    OpResult result;
    uint64_t faults_before = tree_.pageins();
    ns::UserContext root;
    auto size = tree_.subtree_size(op.path, root);
    if (!size.ok()) {
        locks_.release_subtree(op.path);
        result.status = size.status();
        t0 = sim_.now();
        co_await network_.transfer(net::LatencyClass::kStore);
        if (attr) {
            led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
            result.ledger = led;
        }
        co_return result;
    }
    int64_t rows = size.take();

    // λFS: prefix-invalidation round, while the subtree flag blocks
    // conflicting reads/writes.
    if (exec.after_lock) {
        sim::SimTime coh_start = sim_.now();
        co_await exec.after_lock();
        if (attr) {
            led.add(sim::LatSeg::kCoherence, sim_.now() - coh_start);
        }
    }

    // Phase 2: quiesce the subtree (ordered lock walk). Subtree ops carry
    // no deadline (clients never stamp them), but a bounded shard queue
    // can still reject a batch; abort the protocol and release the flag.
    sim::Span quiesce_span =
        sim_.tracer().start_span("store", "quiesce", txn_span.context());
    quiesce_span.annotate("rows", rows);
    Status quiesced =
        co_await quiesce_rows(op.path, rows, attr ? &led : nullptr);
    quiesce_span.end();
    if (!quiesced.ok()) {
        locks_.release_subtree(op.path);
        result.status = quiesced;
        t0 = sim_.now();
        co_await network_.transfer(net::LatencyClass::kStore);
        if (attr) {
            led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
            result.ledger = led;
        }
        co_return result;
    }

    // Phase 3: batched sub-transactions, each preceded by the calling
    // NameNode cluster's own batch processing cost.
    sim::Span commit_span = sim_.tracer().start_span(
        "store", "commit_batches", txn_span.context());
    commit_span.annotate("rows", rows);
    int batch = config_.subtree_batch_size;
    for (int64_t done = 0; done < rows; done += batch) {
        int64_t n = std::min<int64_t>(batch, rows - done);
        if (exec.per_row_nn_cost > 0) {
            co_await sim::delay(sim_, exec.per_row_nn_cost * n);
            if (attr) {
                led.add(sim::LatSeg::kNameNodeCpu, exec.per_row_nn_cost * n);
            }
        }
        Status committed =
            co_await commit_subtree_batch(op.path, n, attr ? &led : nullptr);
        if (!committed.ok()) {
            commit_span.end();
            locks_.release_subtree(op.path);
            result.status = committed;
            t0 = sim_.now();
            co_await network_.transfer(net::LatencyClass::kStore);
            if (attr) {
                led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
                result.ledger = led;
            }
            co_return result;
        }
    }
    commit_span.end();

    result = apply_write(op);
    result.inodes_touched = rows;
    co_await charge_ns_faults(faults_before, attr ? &led : nullptr);
    locks_.release_subtree(op.path);
    t0 = sim_.now();
    co_await network_.transfer(net::LatencyClass::kStore);
    if (attr) {
        led.add(sim::LatSeg::kNetStore, sim_.now() - t0);
        result.ledger = led;
    }
    co_return result;
}

uint64_t
MetadataStore::total_reads() const
{
    uint64_t total = 0;
    for (const auto& shard : shards_) {
        total += shard->reads_served();
    }
    return total;
}

uint64_t
MetadataStore::total_writes() const
{
    uint64_t total = 0;
    for (const auto& shard : shards_) {
        total += shard->writes_served();
    }
    return total;
}

size_t
MetadataStore::queue_depth() const
{
    size_t total = 0;
    for (const auto& shard : shards_) {
        total += shard->queue_depth();
    }
    return total;
}

uint64_t
MetadataStore::shed_total() const
{
    uint64_t total = 0;
    for (const auto& shard : shards_) {
        total += shard->shed_total();
    }
    if (rejected_expired_ != nullptr) {
        total += rejected_expired_->value();
    }
    if (rejected_breaker_ != nullptr) {
        total += rejected_breaker_->value();
    }
    return total;
}

uint64_t
MetadataStore::breaker_opens() const
{
    uint64_t total = 0;
    for (const auto& breaker : breakers_) {
        total += breaker->opens();
    }
    return total;
}

uint64_t
MetadataStore::breaker_fast_failures() const
{
    uint64_t total = 0;
    for (const auto& breaker : breakers_) {
        total += breaker->fast_failures();
    }
    return total;
}

}  // namespace lfs::store
