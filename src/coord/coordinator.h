/**
 * @file
 * The pluggable "Coordinator" service (ZooKeeper / NDB in the paper, §3.5):
 * tracks which cache members (NameNode instances) are alive in which
 * deployment groups, and mediates the INV/ACK rounds of the λFS coherence
 * protocol. Members that terminate mid-protocol are excused from ACKing
 * (Algorithm 1, step 1).
 */
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/network.h"
#include "src/sim/primitives.h"
#include "src/sim/simulation.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

namespace lfs::coord {

/** A cache-holding participant in the coherence protocol. */
class CacheMember {
  public:
    virtual ~CacheMember() = default;

    /** Liveness as observed by the coordinator. */
    virtual bool member_alive() const = 0;

    /**
     * Deliver an invalidation for @p path (point) or the subtree rooted
     * at @p path (when @p subtree). Returning completes the ACK.
     */
    virtual sim::Task<void> deliver_invalidation(std::string path,
                                                 bool subtree) = 0;
};

/** Reliable-delivery knobs for the INV/ACK round. */
struct CoordinatorConfig {
    /**
     * How long the leader waits for a member's ACK before retransmitting
     * the INV. Generous versus the ~0.3-0.8 ms healthy coord round trip,
     * tight versus the client-visible write timeout so a lossy network
     * converges within one client attempt.
     */
    sim::SimTime ack_timeout = sim::msec(25);
    /** Cap for the exponential retransmission backoff. */
    sim::SimTime retransmit_backoff_max = sim::msec(400);
};

class Coordinator {
  public:
    Coordinator(sim::Simulation& sim, net::Network& network,
                CoordinatorConfig config = {});

    /** Register @p member as alive in @p group. */
    void join(int group, CacheMember* member);

    /** Remove @p member from @p group (death or reclamation). */
    void leave(int group, CacheMember* member);

    /** Live members currently registered in @p group. */
    size_t group_size(int group) const;

    /** Total live members across all groups. */
    size_t total_members() const;

    /** One invalidation to deliver to every member of one group. */
    struct InvTarget {
        int group;
        std::string path;
        bool subtree = false;
    };

    /**
     * Run one coherence round: for each target, send an INV (with the
     * path payload) to every live member of the target's group except
     * @p exclude (the leader invalidates locally), then wait for all
     * ACKs. Each INV/ACK pays a coordinator network round trip; targets
     * fan out in parallel. @p ctx parents the round's trace span to the
     * triggering write.
     */
    sim::Task<void> invalidate(std::vector<InvTarget> targets,
                               CacheMember* exclude,
                               sim::TraceContext ctx = {});

    /** Convenience: one target. */
    sim::Task<void> invalidate_one(int group, std::string path, bool subtree,
                                   CacheMember* exclude,
                                   sim::TraceContext ctx = {});

    uint64_t invs_sent() const { return invs_.value(); }
    uint64_t rounds() const { return rounds_.value(); }
    uint64_t retransmits() const { return retransmits_.value(); }

  private:
    /**
     * Reliable INV delivery to one member: attempts repeat with an
     * ack-timeout + exponential backoff until either an ACK arrives or
     * the member is observed dead (dead members are excused from ACKing,
     * Algorithm 1 step 1). Loss of the INV or of the ACK — injected by an
     * installed FaultPlan, including partitions of the member's group —
     * therefore delays but never skips an invalidation: the write holds
     * its exclusive store locks until every live member has ACKed.
     */
    sim::Task<void> deliver_one(int group, CacheMember* member,
                                std::string path, bool subtree,
                                sim::WaitGroup* wg);

    /** One INV/ACK attempt. @return true when the leader saw the ACK. */
    sim::Task<bool> try_deliver(int group, CacheMember* member,
                                const std::string& path, bool subtree);

    /** Redundant delivery of a duplicated INV (invalidation is idempotent). */
    sim::Task<void> deliver_duplicate(CacheMember* member, std::string path,
                                      bool subtree);

    sim::Simulation& sim_;
    net::Network& network_;
    CoordinatorConfig config_;
    std::unordered_map<int, std::vector<CacheMember*>> groups_;
    // Registry-owned (exported via --metrics-out).
    sim::Counter& invs_;
    sim::Counter& rounds_;
    sim::Counter& retransmits_;
};

}  // namespace lfs::coord
