#include "src/coord/coordinator.h"

#include <algorithm>

namespace lfs::coord {

Coordinator::Coordinator(sim::Simulation& sim, net::Network& network,
                         CoordinatorConfig config)
    : sim_(sim),
      network_(network),
      config_(config),
      invs_(sim.metrics().counter("coord.invs")),
      rounds_(sim.metrics().counter("coord.rounds")),
      retransmits_(sim.metrics().counter("coord.retransmits"))
{
}

void
Coordinator::join(int group, CacheMember* member)
{
    auto& members = groups_[group];
    if (std::find(members.begin(), members.end(), member) == members.end()) {
        members.push_back(member);
    }
}

void
Coordinator::leave(int group, CacheMember* member)
{
    auto it = groups_.find(group);
    if (it == groups_.end()) {
        return;
    }
    auto& members = it->second;
    members.erase(std::remove(members.begin(), members.end(), member),
                  members.end());
}

size_t
Coordinator::group_size(int group) const
{
    auto it = groups_.find(group);
    return it == groups_.end() ? 0 : it->second.size();
}

size_t
Coordinator::total_members() const
{
    size_t total = 0;
    for (const auto& [group, members] : groups_) {
        total += members.size();
    }
    return total;
}

sim::Task<void>
Coordinator::deliver_duplicate(CacheMember* member, std::string path,
                               bool subtree)
{
    co_await network_.transfer(net::LatencyClass::kCoord);
    if (member->member_alive()) {
        co_await member->deliver_invalidation(std::move(path), subtree);
    }
}

sim::Task<bool>
Coordinator::try_deliver(int group, CacheMember* member,
                         const std::string& path, bool subtree)
{
    auto inv_fault = network_.message_fault(
        sim::FaultChannel::kCoordInv, sim::MessageDirection::kRequest, group);
    if (inv_fault.duplicate) {
        sim::spawn(deliver_duplicate(member, path, subtree));
    }
    // INV hop to the member (the leader pays the latency whether or not
    // the message survives — it learns of a loss only via the ack timeout).
    co_await network_.transfer(net::LatencyClass::kCoord);
    if (inv_fault.drop) {
        co_return false;
    }
    invs_.add();
    // A member that terminated mid-protocol is excused from ACKing.
    if (!member->member_alive()) {
        co_return true;
    }
    co_await member->deliver_invalidation(path, subtree);
    auto ack_fault = network_.message_fault(
        sim::FaultChannel::kCoordAck, sim::MessageDirection::kReply, group);
    // ACK hop back to the leader.
    co_await network_.transfer(net::LatencyClass::kCoord);
    co_return !ack_fault.drop;
}

sim::Task<void>
Coordinator::deliver_one(int group, CacheMember* member, std::string path,
                         bool subtree, sim::WaitGroup* wg)
{
    sim::SimTime backoff = config_.ack_timeout;
    while (true) {
        if (!member->member_alive()) {
            break;  // excused: a dead member can't serve stale cache reads
        }
        bool acked = co_await try_deliver(group, member, path, subtree);
        if (acked) {
            break;
        }
        // Ack timeout elapsed with no ACK: retransmit with backoff. The
        // loop is bounded in practice by the member dying or the fault /
        // partition window closing; invalidation delivery is idempotent,
        // so an ACK lost after a successful delivery only costs time.
        retransmits_.add();
        co_await sim::delay(sim_, backoff);
        backoff = std::min(backoff * 2, config_.retransmit_backoff_max);
    }
    wg->done();
}

sim::Task<void>
Coordinator::invalidate(std::vector<InvTarget> targets, CacheMember* exclude,
                        sim::TraceContext ctx)
{
    rounds_.add();
    sim::Span round_span =
        sim_.tracer().start_span("coord", "inv_round", ctx);
    round_span.annotate("targets", static_cast<int64_t>(targets.size()));
    sim::WaitGroup wg(sim_);
    for (const InvTarget& target : targets) {
        auto it = groups_.find(target.group);
        if (it == groups_.end()) {
            continue;
        }
        // Snapshot: members joining after the INV is issued will read the
        // post-write state from the store, so they need no invalidation.
        std::vector<CacheMember*> snapshot = it->second;
        for (CacheMember* member : snapshot) {
            if (member == exclude) {
                continue;
            }
            wg.add();
            sim::spawn(deliver_one(target.group, member, target.path,
                                   target.subtree, &wg));
        }
    }
    co_await wg.wait();
}

sim::Task<void>
Coordinator::invalidate_one(int group, std::string path, bool subtree,
                            CacheMember* exclude, sim::TraceContext ctx)
{
    std::vector<InvTarget> targets;
    targets.push_back(InvTarget{group, std::move(path), subtree});
    co_await invalidate(std::move(targets), exclude, ctx);
}

}  // namespace lfs::coord
