#include "src/coord/coordinator.h"

#include <algorithm>

namespace lfs::coord {

Coordinator::Coordinator(sim::Simulation& sim, net::Network& network)
    : sim_(sim),
      network_(network),
      invs_(sim.metrics().counter("coord.invs")),
      rounds_(sim.metrics().counter("coord.rounds"))
{
}

void
Coordinator::join(int group, CacheMember* member)
{
    auto& members = groups_[group];
    if (std::find(members.begin(), members.end(), member) == members.end()) {
        members.push_back(member);
    }
}

void
Coordinator::leave(int group, CacheMember* member)
{
    auto it = groups_.find(group);
    if (it == groups_.end()) {
        return;
    }
    auto& members = it->second;
    members.erase(std::remove(members.begin(), members.end(), member),
                  members.end());
}

size_t
Coordinator::group_size(int group) const
{
    auto it = groups_.find(group);
    return it == groups_.end() ? 0 : it->second.size();
}

size_t
Coordinator::total_members() const
{
    size_t total = 0;
    for (const auto& [group, members] : groups_) {
        total += members.size();
    }
    return total;
}

sim::Task<void>
Coordinator::deliver_one(CacheMember* member, std::string path, bool subtree,
                         sim::WaitGroup* wg)
{
    // INV hop to the member.
    co_await network_.transfer(net::LatencyClass::kCoord);
    invs_.add();
    // A member that terminated mid-protocol is excused from ACKing.
    if (member->member_alive()) {
        co_await member->deliver_invalidation(std::move(path), subtree);
    }
    // ACK hop back to the leader.
    co_await network_.transfer(net::LatencyClass::kCoord);
    wg->done();
}

sim::Task<void>
Coordinator::invalidate(std::vector<InvTarget> targets, CacheMember* exclude,
                        sim::TraceContext ctx)
{
    rounds_.add();
    sim::Span round_span =
        sim_.tracer().start_span("coord", "inv_round", ctx);
    round_span.annotate("targets", static_cast<int64_t>(targets.size()));
    sim::WaitGroup wg(sim_);
    for (const InvTarget& target : targets) {
        auto it = groups_.find(target.group);
        if (it == groups_.end()) {
            continue;
        }
        // Snapshot: members joining after the INV is issued will read the
        // post-write state from the store, so they need no invalidation.
        std::vector<CacheMember*> snapshot = it->second;
        for (CacheMember* member : snapshot) {
            if (member == exclude) {
                continue;
            }
            wg.add();
            sim::spawn(deliver_one(member, target.path, target.subtree, &wg));
        }
    }
    co_await wg.wait();
}

sim::Task<void>
Coordinator::invalidate_one(int group, std::string path, bool subtree,
                            CacheMember* exclude, sim::TraceContext ctx)
{
    std::vector<InvTarget> targets;
    targets.push_back(InvTarget{group, std::move(path), subtree});
    co_await invalidate(std::move(targets), exclude, ctx);
}

}  // namespace lfs::coord
