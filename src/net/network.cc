#include "src/net/network.h"

#include <cassert>

namespace lfs::net {

Network::Network(sim::Simulation& sim, sim::Rng rng, NetworkConfig config)
    : sim_(sim), rng_(rng), config_(config)
{
}

const LatencyModel&
Network::model(LatencyClass cls) const
{
    switch (cls) {
      case LatencyClass::kLocal:
        return config_.local;
      case LatencyClass::kTcp:
        return config_.tcp;
      case LatencyClass::kHttpGateway:
        return config_.http;
      case LatencyClass::kStore:
        return config_.store;
      case LatencyClass::kCoord:
        return config_.coord;
      case LatencyClass::kCount:
        break;
    }
    assert(false && "bad latency class");
    return config_.local;
}

sim::SimTime
Network::sample(LatencyClass cls)
{
    const LatencyModel& m = model(cls);
    ++sent_[static_cast<size_t>(cls)];
    return rng_.uniform_duration(m.min, m.max);
}

sim::Task<void>
Network::transfer(LatencyClass cls)
{
    co_await sim::delay(sim_, sample(cls));
}

sim::Task<void>
Network::round_trip(LatencyClass cls)
{
    co_await sim::delay(sim_, sample(cls));
    co_await sim::delay(sim_, sample(cls));
}

uint64_t
Network::messages(LatencyClass cls) const
{
    return sent_[static_cast<size_t>(cls)];
}

}  // namespace lfs::net
