#include "src/net/network.h"

#include <cassert>

namespace lfs::net {

Network::Network(sim::Simulation& sim, sim::Rng rng, NetworkConfig config)
    : sim_(sim), rng_(rng), config_(config)
{
}

const LatencyModel&
Network::model(LatencyClass cls) const
{
    switch (cls) {
      case LatencyClass::kLocal:
        return config_.local;
      case LatencyClass::kTcp:
        return config_.tcp;
      case LatencyClass::kHttpGateway:
        return config_.http;
      case LatencyClass::kStore:
        return config_.store;
      case LatencyClass::kCoord:
        return config_.coord;
      case LatencyClass::kCount:
        break;
    }
    assert(false && "bad latency class");
    return config_.local;
}

sim::SimTime
Network::sample(LatencyClass cls)
{
    const LatencyModel& m = model(cls);
    ++sent_[static_cast<size_t>(cls)];
    return rng_.uniform_duration(m.min, m.max);
}

namespace {

/** Fault channel a latency class maps to for delay-fault targeting. */
sim::FaultChannel
fault_channel_for(LatencyClass cls)
{
    switch (cls) {
      case LatencyClass::kLocal:
      case LatencyClass::kTcp:
        return sim::FaultChannel::kClientRpc;
      case LatencyClass::kHttpGateway:
        return sim::FaultChannel::kGateway;
      case LatencyClass::kStore:
        return sim::FaultChannel::kStore;
      case LatencyClass::kCoord:
      case LatencyClass::kCount:
        break;
    }
    return sim::FaultChannel::kCoordInv;
}

}  // namespace

sim::Task<void>
Network::transfer(LatencyClass cls)
{
    sim::SimTime latency = sample(cls);
    if (sim::FaultPlan* plan = sim_.fault_plan()) {
        latency += plan->message_delay(fault_channel_for(cls));
    }
    co_await sim::delay(sim_, latency);
}

sim::Task<void>
Network::round_trip(LatencyClass cls)
{
    co_await transfer(cls);
    co_await transfer(cls);
}

sim::MessageFaultDecision
Network::message_fault(sim::FaultChannel channel,
                       sim::MessageDirection direction, int group)
{
    sim::FaultPlan* plan = sim_.fault_plan();
    if (plan == nullptr) {
        return {};
    }
    return plan->on_message(channel, direction, group);
}

uint64_t
Network::messages(LatencyClass cls) const
{
    return sent_[static_cast<size_t>(cls)];
}

}  // namespace lfs::net
