/**
 * @file
 * Latency-modelled network fabric.
 *
 * The simulator does not model packets or bandwidth; DFS metadata messages
 * are small and the paper's performance effects come from per-message
 * latency and queueing at endpoints. Each message class has a jittered
 * one-way latency distribution; endpoints add their own service/queueing
 * time on top.
 */
#pragma once

#include <array>
#include <cstdint>

#include "src/sim/fault.h"
#include "src/sim/primitives.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace lfs::net {

/** Message classes with distinct latency characteristics. */
enum class LatencyClass {
    kLocal = 0,    ///< same-VM (client <-> its TCP server)
    kTcp,          ///< direct TCP RPC hop (client <-> NameNode)
    kHttpGateway,  ///< HTTP invocation through the FaaS API gateway
    kStore,        ///< NameNode <-> persistent metadata store hop
    kCoord,        ///< NameNode <-> coordinator hop
    kCount,
};

/** One-way latency distribution: uniform in [min, max]. */
struct LatencyModel {
    sim::SimTime min;
    sim::SimTime max;
};

/**
 * Default latencies calibrated to the paper's measurements: TCP RPCs see
 * 1-2 ms end-to-end (two hops plus service), HTTP RPCs 8-20 ms.
 */
struct NetworkConfig {
    LatencyModel local{sim::usec(5), sim::usec(25)};
    LatencyModel tcp{sim::usec(200), sim::usec(500)};
    LatencyModel http{sim::usec(3500), sim::usec(9000)};
    LatencyModel store{sim::usec(150), sim::usec(350)};
    LatencyModel coord{sim::usec(150), sim::usec(400)};
};

/** The shared fabric; all components transfer messages through it. */
class Network {
  public:
    Network(sim::Simulation& sim, sim::Rng rng, NetworkConfig config = {});

    /** Sample a one-way latency for @p cls (advances the RNG). */
    sim::SimTime sample(LatencyClass cls);

    /**
     * Suspend the calling process for one message delivery of class
     * @p cls. An installed FaultPlan may add an extra in-flight delay
     * (delay faults are safe to apply inline on every message; drops and
     * duplicates are not — see message_fault()).
     */
    sim::Task<void> transfer(LatencyClass cls);

    /** Suspend for a full round trip (two one-way samples). */
    sim::Task<void> round_trip(LatencyClass cls);

    /**
     * Consult the installed FaultPlan for the fate of one message on
     * @p channel (no-fault defaults when no plan is installed). Callers
     * sit at protocol points with an end-to-end retry/timeout above them:
     * a "dropped" message simply never arrives and the caller's timeout
     * or ack-retransmission path resolves the silence. @p group, when
     * >= 0, is the remote endpoint's node group for partition checks.
     */
    sim::MessageFaultDecision message_fault(sim::FaultChannel channel,
                                            sim::MessageDirection direction,
                                            int group = -1);

    /** Messages sent so far in class @p cls. */
    uint64_t messages(LatencyClass cls) const;

    /** The simulation this fabric schedules on (for latency stamping). */
    sim::Simulation& simulation() { return sim_; }

    const NetworkConfig& config() const { return config_; }

  private:
    const LatencyModel& model(LatencyClass cls) const;

    sim::Simulation& sim_;
    sim::Rng rng_;
    NetworkConfig config_;
    std::array<uint64_t, static_cast<size_t>(LatencyClass::kCount)> sent_{};
};

}  // namespace lfs::net
