file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_client_policies.dir/bench_ablation_client_policies.cc.o"
  "CMakeFiles/bench_ablation_client_policies.dir/bench_ablation_client_policies.cc.o.d"
  "CMakeFiles/bench_ablation_client_policies.dir/common/harness.cc.o"
  "CMakeFiles/bench_ablation_client_policies.dir/common/harness.cc.o.d"
  "bench_ablation_client_policies"
  "bench_ablation_client_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_client_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
