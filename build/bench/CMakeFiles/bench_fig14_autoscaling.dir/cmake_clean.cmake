file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_autoscaling.dir/bench_fig14_autoscaling.cc.o"
  "CMakeFiles/bench_fig14_autoscaling.dir/bench_fig14_autoscaling.cc.o.d"
  "CMakeFiles/bench_fig14_autoscaling.dir/common/harness.cc.o"
  "CMakeFiles/bench_fig14_autoscaling.dir/common/harness.cc.o.d"
  "bench_fig14_autoscaling"
  "bench_fig14_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
