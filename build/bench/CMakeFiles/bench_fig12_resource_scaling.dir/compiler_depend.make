# Empty compiler generated dependencies file for bench_fig12_resource_scaling.
# This may be replaced when dependencies are built.
