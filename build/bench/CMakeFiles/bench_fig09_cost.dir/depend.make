# Empty dependencies file for bench_fig09_cost.
# This may be replaced when dependencies are built.
