file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_cost.dir/bench_fig09_cost.cc.o"
  "CMakeFiles/bench_fig09_cost.dir/bench_fig09_cost.cc.o.d"
  "CMakeFiles/bench_fig09_cost.dir/common/harness.cc.o"
  "CMakeFiles/bench_fig09_cost.dir/common/harness.cc.o.d"
  "bench_fig09_cost"
  "bench_fig09_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
