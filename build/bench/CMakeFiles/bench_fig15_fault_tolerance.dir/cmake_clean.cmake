file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_fault_tolerance.dir/bench_fig15_fault_tolerance.cc.o"
  "CMakeFiles/bench_fig15_fault_tolerance.dir/bench_fig15_fault_tolerance.cc.o.d"
  "CMakeFiles/bench_fig15_fault_tolerance.dir/common/harness.cc.o"
  "CMakeFiles/bench_fig15_fault_tolerance.dir/common/harness.cc.o.d"
  "bench_fig15_fault_tolerance"
  "bench_fig15_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
