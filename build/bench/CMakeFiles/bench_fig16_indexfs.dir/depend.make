# Empty dependencies file for bench_fig16_indexfs.
# This may be replaced when dependencies are built.
