file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_indexfs.dir/bench_fig16_indexfs.cc.o"
  "CMakeFiles/bench_fig16_indexfs.dir/bench_fig16_indexfs.cc.o.d"
  "CMakeFiles/bench_fig16_indexfs.dir/common/harness.cc.o"
  "CMakeFiles/bench_fig16_indexfs.dir/common/harness.cc.o.d"
  "bench_fig16_indexfs"
  "bench_fig16_indexfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_indexfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
