file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_industrial.dir/bench_fig08_industrial.cc.o"
  "CMakeFiles/bench_fig08_industrial.dir/bench_fig08_industrial.cc.o.d"
  "CMakeFiles/bench_fig08_industrial.dir/common/harness.cc.o"
  "CMakeFiles/bench_fig08_industrial.dir/common/harness.cc.o.d"
  "bench_fig08_industrial"
  "bench_fig08_industrial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_industrial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
