# Empty dependencies file for bench_fig08_industrial.
# This may be replaced when dependencies are built.
