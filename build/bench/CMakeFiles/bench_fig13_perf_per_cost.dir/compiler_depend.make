# Empty compiler generated dependencies file for bench_fig13_perf_per_cost.
# This may be replaced when dependencies are built.
