file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_subtree.dir/bench_table3_subtree.cc.o"
  "CMakeFiles/bench_table3_subtree.dir/bench_table3_subtree.cc.o.d"
  "CMakeFiles/bench_table3_subtree.dir/common/harness.cc.o"
  "CMakeFiles/bench_table3_subtree.dir/common/harness.cc.o.d"
  "bench_table3_subtree"
  "bench_table3_subtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_subtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
