# Empty dependencies file for bench_table3_subtree.
# This may be replaced when dependencies are built.
