# Empty dependencies file for bench_fig11_client_scaling.
# This may be replaced when dependencies are built.
