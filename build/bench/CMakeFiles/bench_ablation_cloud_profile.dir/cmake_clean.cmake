file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cloud_profile.dir/bench_ablation_cloud_profile.cc.o"
  "CMakeFiles/bench_ablation_cloud_profile.dir/bench_ablation_cloud_profile.cc.o.d"
  "CMakeFiles/bench_ablation_cloud_profile.dir/common/harness.cc.o"
  "CMakeFiles/bench_ablation_cloud_profile.dir/common/harness.cc.o.d"
  "bench_ablation_cloud_profile"
  "bench_ablation_cloud_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cloud_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
