file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_subtree_batch.dir/bench_ablation_subtree_batch.cc.o"
  "CMakeFiles/bench_ablation_subtree_batch.dir/bench_ablation_subtree_batch.cc.o.d"
  "CMakeFiles/bench_ablation_subtree_batch.dir/common/harness.cc.o"
  "CMakeFiles/bench_ablation_subtree_batch.dir/common/harness.cc.o.d"
  "bench_ablation_subtree_batch"
  "bench_ablation_subtree_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subtree_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
