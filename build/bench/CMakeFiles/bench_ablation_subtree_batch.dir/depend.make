# Empty dependencies file for bench_ablation_subtree_batch.
# This may be replaced when dependencies are built.
