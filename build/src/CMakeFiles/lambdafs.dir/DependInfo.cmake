
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/metadata_cache.cc" "src/CMakeFiles/lambdafs.dir/cache/metadata_cache.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/cache/metadata_cache.cc.o.d"
  "/root/repo/src/cephfs/cephfs.cc" "src/CMakeFiles/lambdafs.dir/cephfs/cephfs.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/cephfs/cephfs.cc.o.d"
  "/root/repo/src/coord/coordinator.cc" "src/CMakeFiles/lambdafs.dir/coord/coordinator.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/coord/coordinator.cc.o.d"
  "/root/repo/src/core/client.cc" "src/CMakeFiles/lambdafs.dir/core/client.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/core/client.cc.o.d"
  "/root/repo/src/core/lambda_fs.cc" "src/CMakeFiles/lambdafs.dir/core/lambda_fs.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/core/lambda_fs.cc.o.d"
  "/root/repo/src/core/name_node.cc" "src/CMakeFiles/lambdafs.dir/core/name_node.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/core/name_node.cc.o.d"
  "/root/repo/src/core/partitioning.cc" "src/CMakeFiles/lambdafs.dir/core/partitioning.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/core/partitioning.cc.o.d"
  "/root/repo/src/core/tcp_registry.cc" "src/CMakeFiles/lambdafs.dir/core/tcp_registry.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/core/tcp_registry.cc.o.d"
  "/root/repo/src/cost/pricing.cc" "src/CMakeFiles/lambdafs.dir/cost/pricing.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/cost/pricing.cc.o.d"
  "/root/repo/src/faas/deployment.cc" "src/CMakeFiles/lambdafs.dir/faas/deployment.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/faas/deployment.cc.o.d"
  "/root/repo/src/faas/function_instance.cc" "src/CMakeFiles/lambdafs.dir/faas/function_instance.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/faas/function_instance.cc.o.d"
  "/root/repo/src/faas/platform.cc" "src/CMakeFiles/lambdafs.dir/faas/platform.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/faas/platform.cc.o.d"
  "/root/repo/src/faas/resource_pool.cc" "src/CMakeFiles/lambdafs.dir/faas/resource_pool.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/faas/resource_pool.cc.o.d"
  "/root/repo/src/hdfs/hdfs.cc" "src/CMakeFiles/lambdafs.dir/hdfs/hdfs.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/hdfs/hdfs.cc.o.d"
  "/root/repo/src/hopsfs/hops_name_node.cc" "src/CMakeFiles/lambdafs.dir/hopsfs/hops_name_node.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/hopsfs/hops_name_node.cc.o.d"
  "/root/repo/src/hopsfs/hopsfs.cc" "src/CMakeFiles/lambdafs.dir/hopsfs/hopsfs.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/hopsfs/hopsfs.cc.o.d"
  "/root/repo/src/indexfs/indexfs.cc" "src/CMakeFiles/lambdafs.dir/indexfs/indexfs.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/indexfs/indexfs.cc.o.d"
  "/root/repo/src/indexfs/lambda_indexfs.cc" "src/CMakeFiles/lambdafs.dir/indexfs/lambda_indexfs.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/indexfs/lambda_indexfs.cc.o.d"
  "/root/repo/src/infinicache/infinicache.cc" "src/CMakeFiles/lambdafs.dir/infinicache/infinicache.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/infinicache/infinicache.cc.o.d"
  "/root/repo/src/lsm/lsm_tree.cc" "src/CMakeFiles/lambdafs.dir/lsm/lsm_tree.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/lsm/lsm_tree.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/CMakeFiles/lambdafs.dir/lsm/memtable.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/lsm/memtable.cc.o.d"
  "/root/repo/src/lsm/sstable.cc" "src/CMakeFiles/lambdafs.dir/lsm/sstable.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/lsm/sstable.cc.o.d"
  "/root/repo/src/namespace/inode.cc" "src/CMakeFiles/lambdafs.dir/namespace/inode.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/namespace/inode.cc.o.d"
  "/root/repo/src/namespace/namespace_tree.cc" "src/CMakeFiles/lambdafs.dir/namespace/namespace_tree.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/namespace/namespace_tree.cc.o.d"
  "/root/repo/src/namespace/tree_builder.cc" "src/CMakeFiles/lambdafs.dir/namespace/tree_builder.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/namespace/tree_builder.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/lambdafs.dir/net/network.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/net/network.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/lambdafs.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/lambdafs.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/lambdafs.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/sim/simulation.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/lambdafs.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/sim/stats.cc.o.d"
  "/root/repo/src/store/data_node.cc" "src/CMakeFiles/lambdafs.dir/store/data_node.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/store/data_node.cc.o.d"
  "/root/repo/src/store/lock_table.cc" "src/CMakeFiles/lambdafs.dir/store/lock_table.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/store/lock_table.cc.o.d"
  "/root/repo/src/store/metadata_store.cc" "src/CMakeFiles/lambdafs.dir/store/metadata_store.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/store/metadata_store.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/lambdafs.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/util/hash.cc.o.d"
  "/root/repo/src/util/path.cc" "src/CMakeFiles/lambdafs.dir/util/path.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/util/path.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/lambdafs.dir/util/status.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/util/status.cc.o.d"
  "/root/repo/src/workload/fault_injector.cc" "src/CMakeFiles/lambdafs.dir/workload/fault_injector.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/workload/fault_injector.cc.o.d"
  "/root/repo/src/workload/microbench.cc" "src/CMakeFiles/lambdafs.dir/workload/microbench.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/workload/microbench.cc.o.d"
  "/root/repo/src/workload/op_mix.cc" "src/CMakeFiles/lambdafs.dir/workload/op_mix.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/workload/op_mix.cc.o.d"
  "/root/repo/src/workload/path_population.cc" "src/CMakeFiles/lambdafs.dir/workload/path_population.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/workload/path_population.cc.o.d"
  "/root/repo/src/workload/spotify_workload.cc" "src/CMakeFiles/lambdafs.dir/workload/spotify_workload.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/workload/spotify_workload.cc.o.d"
  "/root/repo/src/workload/tree_test.cc" "src/CMakeFiles/lambdafs.dir/workload/tree_test.cc.o" "gcc" "src/CMakeFiles/lambdafs.dir/workload/tree_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
