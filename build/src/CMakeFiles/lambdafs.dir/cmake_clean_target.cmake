file(REMOVE_RECURSE
  "liblambdafs.a"
)
