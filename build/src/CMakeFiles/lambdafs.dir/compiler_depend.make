# Empty compiler generated dependencies file for lambdafs.
# This may be replaced when dependencies are built.
