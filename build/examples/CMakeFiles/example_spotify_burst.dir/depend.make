# Empty dependencies file for example_spotify_burst.
# This may be replaced when dependencies are built.
