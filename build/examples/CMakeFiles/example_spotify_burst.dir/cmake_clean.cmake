file(REMOVE_RECURSE
  "CMakeFiles/example_spotify_burst.dir/spotify_burst.cpp.o"
  "CMakeFiles/example_spotify_burst.dir/spotify_burst.cpp.o.d"
  "example_spotify_burst"
  "example_spotify_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spotify_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
