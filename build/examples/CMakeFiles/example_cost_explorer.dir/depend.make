# Empty dependencies file for example_cost_explorer.
# This may be replaced when dependencies are built.
