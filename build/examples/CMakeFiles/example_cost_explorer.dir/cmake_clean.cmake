file(REMOVE_RECURSE
  "CMakeFiles/example_cost_explorer.dir/cost_explorer.cpp.o"
  "CMakeFiles/example_cost_explorer.dir/cost_explorer.cpp.o.d"
  "example_cost_explorer"
  "example_cost_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cost_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
