# Empty compiler generated dependencies file for example_indexfs_port.
# This may be replaced when dependencies are built.
