file(REMOVE_RECURSE
  "CMakeFiles/example_indexfs_port.dir/indexfs_port.cpp.o"
  "CMakeFiles/example_indexfs_port.dir/indexfs_port.cpp.o.d"
  "example_indexfs_port"
  "example_indexfs_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_indexfs_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
