# Empty compiler generated dependencies file for example_fault_tolerance_demo.
# This may be replaced when dependencies are built.
