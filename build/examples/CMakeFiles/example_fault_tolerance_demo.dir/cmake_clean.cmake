file(REMOVE_RECURSE
  "CMakeFiles/example_fault_tolerance_demo.dir/fault_tolerance_demo.cpp.o"
  "CMakeFiles/example_fault_tolerance_demo.dir/fault_tolerance_demo.cpp.o.d"
  "example_fault_tolerance_demo"
  "example_fault_tolerance_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fault_tolerance_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
