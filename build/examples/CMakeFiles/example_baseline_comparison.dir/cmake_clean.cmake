file(REMOVE_RECURSE
  "CMakeFiles/example_baseline_comparison.dir/baseline_comparison.cpp.o"
  "CMakeFiles/example_baseline_comparison.dir/baseline_comparison.cpp.o.d"
  "example_baseline_comparison"
  "example_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
