# Empty dependencies file for example_coherence_demo.
# This may be replaced when dependencies are built.
