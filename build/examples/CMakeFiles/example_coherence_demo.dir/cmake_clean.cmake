file(REMOVE_RECURSE
  "CMakeFiles/example_coherence_demo.dir/coherence_demo.cpp.o"
  "CMakeFiles/example_coherence_demo.dir/coherence_demo.cpp.o.d"
  "example_coherence_demo"
  "example_coherence_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_coherence_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
