# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_cephfs_indexfs_edge[1]_include.cmake")
include("/root/repo/build/tests/test_client_policies[1]_include.cmake")
include("/root/repo/build/tests/test_coherence_audit[1]_include.cmake")
include("/root/repo/build/tests/test_coord_cost[1]_include.cmake")
include("/root/repo/build/tests/test_core_components[1]_include.cmake")
include("/root/repo/build/tests/test_faas[1]_include.cmake")
include("/root/repo/build/tests/test_faas_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_hdfs[1]_include.cmake")
include("/root/repo/build/tests/test_hopsfs[1]_include.cmake")
include("/root/repo/build/tests/test_hopsfs_cn_and_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_integration_cross_system[1]_include.cmake")
include("/root/repo/build/tests/test_lambda_fs[1]_include.cmake")
include("/root/repo/build/tests/test_lsm[1]_include.cmake")
include("/root/repo/build/tests/test_micro_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_namespace[1]_include.cmake")
include("/root/repo/build/tests/test_namespace_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_net_and_log[1]_include.cmake")
include("/root/repo/build/tests/test_sim_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_store[1]_include.cmake")
include("/root/repo/build/tests/test_subtree_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
