file(REMOVE_RECURSE
  "CMakeFiles/test_cephfs_indexfs_edge.dir/test_cephfs_indexfs_edge.cc.o"
  "CMakeFiles/test_cephfs_indexfs_edge.dir/test_cephfs_indexfs_edge.cc.o.d"
  "test_cephfs_indexfs_edge"
  "test_cephfs_indexfs_edge.pdb"
  "test_cephfs_indexfs_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cephfs_indexfs_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
