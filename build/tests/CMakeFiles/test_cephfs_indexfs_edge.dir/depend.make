# Empty dependencies file for test_cephfs_indexfs_edge.
# This may be replaced when dependencies are built.
