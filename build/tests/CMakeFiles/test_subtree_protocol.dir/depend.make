# Empty dependencies file for test_subtree_protocol.
# This may be replaced when dependencies are built.
