file(REMOVE_RECURSE
  "CMakeFiles/test_subtree_protocol.dir/test_subtree_protocol.cc.o"
  "CMakeFiles/test_subtree_protocol.dir/test_subtree_protocol.cc.o.d"
  "test_subtree_protocol"
  "test_subtree_protocol.pdb"
  "test_subtree_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subtree_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
