# Empty compiler generated dependencies file for test_micro_semantics.
# This may be replaced when dependencies are built.
