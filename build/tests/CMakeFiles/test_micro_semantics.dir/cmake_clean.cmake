file(REMOVE_RECURSE
  "CMakeFiles/test_micro_semantics.dir/test_micro_semantics.cc.o"
  "CMakeFiles/test_micro_semantics.dir/test_micro_semantics.cc.o.d"
  "test_micro_semantics"
  "test_micro_semantics.pdb"
  "test_micro_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_micro_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
