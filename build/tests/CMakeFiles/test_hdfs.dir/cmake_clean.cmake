file(REMOVE_RECURSE
  "CMakeFiles/test_hdfs.dir/test_hdfs.cc.o"
  "CMakeFiles/test_hdfs.dir/test_hdfs.cc.o.d"
  "test_hdfs"
  "test_hdfs.pdb"
  "test_hdfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
