# Empty dependencies file for test_net_and_log.
# This may be replaced when dependencies are built.
