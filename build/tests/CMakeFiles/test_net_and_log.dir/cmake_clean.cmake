file(REMOVE_RECURSE
  "CMakeFiles/test_net_and_log.dir/test_net_and_log.cc.o"
  "CMakeFiles/test_net_and_log.dir/test_net_and_log.cc.o.d"
  "test_net_and_log"
  "test_net_and_log.pdb"
  "test_net_and_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_and_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
