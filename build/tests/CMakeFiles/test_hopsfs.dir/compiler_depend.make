# Empty compiler generated dependencies file for test_hopsfs.
# This may be replaced when dependencies are built.
