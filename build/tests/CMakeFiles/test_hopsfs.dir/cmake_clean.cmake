file(REMOVE_RECURSE
  "CMakeFiles/test_hopsfs.dir/test_hopsfs.cc.o"
  "CMakeFiles/test_hopsfs.dir/test_hopsfs.cc.o.d"
  "test_hopsfs"
  "test_hopsfs.pdb"
  "test_hopsfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hopsfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
