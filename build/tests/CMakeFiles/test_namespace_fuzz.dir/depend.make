# Empty dependencies file for test_namespace_fuzz.
# This may be replaced when dependencies are built.
