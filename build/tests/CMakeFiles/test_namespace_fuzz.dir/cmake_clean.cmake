file(REMOVE_RECURSE
  "CMakeFiles/test_namespace_fuzz.dir/test_namespace_fuzz.cc.o"
  "CMakeFiles/test_namespace_fuzz.dir/test_namespace_fuzz.cc.o.d"
  "test_namespace_fuzz"
  "test_namespace_fuzz.pdb"
  "test_namespace_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_namespace_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
