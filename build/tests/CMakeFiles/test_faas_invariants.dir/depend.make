# Empty dependencies file for test_faas_invariants.
# This may be replaced when dependencies are built.
