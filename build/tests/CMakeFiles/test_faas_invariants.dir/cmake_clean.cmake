file(REMOVE_RECURSE
  "CMakeFiles/test_faas_invariants.dir/test_faas_invariants.cc.o"
  "CMakeFiles/test_faas_invariants.dir/test_faas_invariants.cc.o.d"
  "test_faas_invariants"
  "test_faas_invariants.pdb"
  "test_faas_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faas_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
