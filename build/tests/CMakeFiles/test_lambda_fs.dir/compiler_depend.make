# Empty compiler generated dependencies file for test_lambda_fs.
# This may be replaced when dependencies are built.
