file(REMOVE_RECURSE
  "CMakeFiles/test_lambda_fs.dir/test_lambda_fs.cc.o"
  "CMakeFiles/test_lambda_fs.dir/test_lambda_fs.cc.o.d"
  "test_lambda_fs"
  "test_lambda_fs.pdb"
  "test_lambda_fs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lambda_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
