file(REMOVE_RECURSE
  "CMakeFiles/test_hopsfs_cn_and_metrics.dir/test_hopsfs_cn_and_metrics.cc.o"
  "CMakeFiles/test_hopsfs_cn_and_metrics.dir/test_hopsfs_cn_and_metrics.cc.o.d"
  "test_hopsfs_cn_and_metrics"
  "test_hopsfs_cn_and_metrics.pdb"
  "test_hopsfs_cn_and_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hopsfs_cn_and_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
