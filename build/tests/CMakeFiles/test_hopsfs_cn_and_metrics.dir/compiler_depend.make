# Empty compiler generated dependencies file for test_hopsfs_cn_and_metrics.
# This may be replaced when dependencies are built.
