file(REMOVE_RECURSE
  "CMakeFiles/test_client_policies.dir/test_client_policies.cc.o"
  "CMakeFiles/test_client_policies.dir/test_client_policies.cc.o.d"
  "test_client_policies"
  "test_client_policies.pdb"
  "test_client_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
