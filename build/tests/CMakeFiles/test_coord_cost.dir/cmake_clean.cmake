file(REMOVE_RECURSE
  "CMakeFiles/test_coord_cost.dir/test_coord_cost.cc.o"
  "CMakeFiles/test_coord_cost.dir/test_coord_cost.cc.o.d"
  "test_coord_cost"
  "test_coord_cost.pdb"
  "test_coord_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coord_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
