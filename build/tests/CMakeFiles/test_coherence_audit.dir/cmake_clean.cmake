file(REMOVE_RECURSE
  "CMakeFiles/test_coherence_audit.dir/test_coherence_audit.cc.o"
  "CMakeFiles/test_coherence_audit.dir/test_coherence_audit.cc.o.d"
  "test_coherence_audit"
  "test_coherence_audit.pdb"
  "test_coherence_audit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
