# Empty compiler generated dependencies file for test_coherence_audit.
# This may be replaced when dependencies are built.
