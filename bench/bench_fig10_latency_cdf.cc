/**
 * @file
 * Figure 10 — end-to-end latency CDFs for λFS, HopsFS, and HopsFS+Cache
 * under both Spotify workloads, split into read and write operations.
 * The paper's shape: λFS reads are ~1-2 ms (far left of both baselines),
 * λFS writes sit to the right of HopsFS's writes because of the
 * coherence protocol.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "common/harness.h"

namespace lfs::bench {
namespace {

void
print_cdf_rows(const char* label, const sim::Histogram& read,
               const sim::Histogram& write)
{
    static const double kFractions[] = {10, 25, 50, 75, 90, 99, 99.9};
    std::printf("  %-18s", label);
    for (double f : kFractions) {
        std::printf(" %9.2f", static_cast<double>(read.percentile(f)) / 1e3);
    }
    std::printf("   |");
    for (double f : kFractions) {
        std::printf(" %9.2f",
                    static_cast<double>(write.percentile(f)) / 1e3);
    }
    std::printf("\n");
}

void
run_workload(double base_rate, const char* tag)
{
    double s = scale();
    int num_vms = 8;
    int clients_per_vm = std::max(1, static_cast<int>(1024 * s) / num_vms);
    double vcpus = 512.0 * s;
    workload::SpotifyConfig wcfg;
    wcfg.base_throughput = base_rate * s;
    wcfg.duration = sim::sec(env_int("LFS_DURATION", 150));
    wcfg.num_client_vms = num_vms;

    std::vector<std::pair<std::string, IndustrialRun>> runs;
    {
        sim::Simulation sim;
        core::LambdaFsConfig config =
            make_lambda_config(vcpus, num_vms, clients_per_vm, s);
        core::LambdaFs fs(sim, config);
        ns::BuiltTree tree = build_scaled_tree(fs.authoritative_tree(), s);
        runs.emplace_back("lambda-fs",
                          run_industrial(sim, fs, std::move(tree), wcfg));
        std::printf("\n--- %s workload ---\n", tag);
        std::printf("  percentile latencies in ms; left block = reads, "
                    "right block = writes\n");
        std::printf("  %-18s %9s %9s %9s %9s %9s %9s %9s   |%9s %9s %9s %9s %9s %9s %9s\n",
                    "system", "p10", "p25", "p50", "p75", "p90", "p99",
                    "p99.9", "p10", "p25", "p50", "p75", "p90", "p99",
                    "p99.9");
        print_cdf_rows("lambda-fs", fs.metrics().read_latency(),
                       fs.metrics().write_latency());
    }
    {
        sim::Simulation sim;
        hopsfs::HopsFs fs(sim, make_hops_config("hopsfs", vcpus, false,
                                                num_vms, clients_per_vm, s));
        ns::BuiltTree tree = build_scaled_tree(fs.authoritative_tree(), s);
        runs.emplace_back("hopsfs",
                          run_industrial(sim, fs, std::move(tree), wcfg));
        print_cdf_rows("hopsfs", fs.metrics().read_latency(),
                       fs.metrics().write_latency());
    }
    {
        sim::Simulation sim;
        hopsfs::HopsFs fs(sim,
                          make_hops_config("hopsfs+cache", vcpus, true,
                                           num_vms, clients_per_vm, s));
        ns::BuiltTree tree = build_scaled_tree(fs.authoritative_tree(), s);
        runs.emplace_back("hopsfs+cache",
                          run_industrial(sim, fs, std::move(tree), wcfg));
        print_cdf_rows("hopsfs+cache", fs.metrics().read_latency(),
                       fs.metrics().write_latency());
    }

    const IndustrialRun& lambda = runs[0].second;
    const IndustrialRun& hops = runs[1].second;
    std::printf("\n  Checks (%s):\n", tag);
    print_check("lambda-fs median read latency in the 1-2ms band",
                fmt(lambda.read_latency_ms) + "ms mean");
    print_check("lambda-fs reads 6.9-20x faster than hopsfs",
                fmt(hops.read_latency_ms / lambda.read_latency_ms) + "x");
    print_check("hopsfs writes 1.5-5.6x faster than lambda-fs",
                fmt(lambda.write_latency_ms / hops.write_latency_ms) + "x");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Figure 10",
                             "Latency CDFs under the Spotify workloads");
    lfs::bench::run_workload(25000.0, "25k ops/s");
    lfs::bench::run_workload(50000.0, "50k ops/s");
    return 0;
}
