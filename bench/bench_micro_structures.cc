/**
 * @file
 * google-benchmark microbenchmarks for the hot data structures: the trie
 * metadata cache, the consistent-hash ring, path utilities, latency
 * histograms, and the DES event loop itself. These guard the simulator's
 * own performance (millions of simulated ops per experiment).
 */
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/cache/metadata_cache.h"
#include "src/namespace/namespace_tree.h"
#include "src/namespace/tree_builder.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/stats.h"
#include "src/util/hash.h"
#include "src/util/path.h"

namespace {

using namespace lfs;

std::vector<std::string>
make_paths(int n)
{
    std::vector<std::string> paths;
    paths.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        paths.push_back("/bench/d" + std::to_string(i % 37) + "/d" +
                        std::to_string(i % 11) + "/f" + std::to_string(i));
    }
    return paths;
}

ns::INode
make_inode(int i)
{
    ns::INode inode;
    inode.id = i + 1;
    inode.name = "f" + std::to_string(i);
    return inode;
}

void
BM_CachePut(benchmark::State& state)
{
    auto paths = make_paths(static_cast<int>(state.range(0)));
    cache::MetadataCache cache;
    int i = 0;
    for (auto _ : state) {
        cache.put(paths[static_cast<size_t>(i) % paths.size()],
                  make_inode(i));
        ++i;
    }
}
BENCHMARK(BM_CachePut)->Arg(1024)->Arg(65536);

void
BM_CacheGetHit(benchmark::State& state)
{
    auto paths = make_paths(static_cast<int>(state.range(0)));
    cache::MetadataCache cache;
    for (size_t i = 0; i < paths.size(); ++i) {
        cache.put(paths[i], make_inode(static_cast<int>(i)));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.get(paths[i % paths.size()]));
        ++i;
    }
}
BENCHMARK(BM_CacheGetHit)->Arg(1024)->Arg(65536);

void
BM_CacheGetMiss(benchmark::State& state)
{
    // Misses at every trie level: unknown leaf under a cached directory,
    // and an unknown first component (rejected before any descent).
    auto paths = make_paths(static_cast<int>(state.range(0)));
    cache::MetadataCache cache;
    for (size_t i = 0; i < paths.size(); ++i) {
        cache.put(paths[i], make_inode(static_cast<int>(i)));
    }
    std::vector<std::string> probes;
    for (int i = 0; i < 512; ++i) {
        probes.push_back(i % 2 == 0
                             ? "/bench/d" + std::to_string(i % 37) + "/d" +
                                   std::to_string(i % 11) + "/missing" +
                                   std::to_string(i)
                             : "/absent/d" + std::to_string(i) + "/f");
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.get(probes[i % probes.size()]));
        ++i;
    }
}
BENCHMARK(BM_CacheGetMiss)->Arg(65536);

void
BM_CacheGetDeepHit(benchmark::State& state)
{
    // 12-component paths: the walk itself dominates, not the leaf lookup.
    std::vector<std::string> paths;
    for (int i = 0; i < 1024; ++i) {
        std::string p;
        for (int d = 0; d < 11; ++d) {
            p += "/lvl" + std::to_string((i + d) % 23);
        }
        p += "/leaf" + std::to_string(i);
        paths.push_back(std::move(p));
    }
    cache::MetadataCache cache;
    for (size_t i = 0; i < paths.size(); ++i) {
        cache.put(paths[i], make_inode(static_cast<int>(i)));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.get(paths[i % paths.size()]));
        ++i;
    }
}
BENCHMARK(BM_CacheGetDeepHit);

void
BM_CachePutChain(benchmark::State& state)
{
    // The λFS read-path install: cache every inode of a resolved chain.
    std::vector<std::vector<ns::INode>> chains;
    for (int i = 0; i < 256; ++i) {
        std::vector<ns::INode> chain;
        ns::INode root;
        root.id = ns::kRootId;
        root.type = ns::INodeType::kDirectory;
        chain.push_back(root);
        ns::INode d1 = make_inode(i + 2);
        d1.name = "d" + std::to_string(i % 37);
        d1.type = ns::INodeType::kDirectory;
        chain.push_back(d1);
        ns::INode d2 = make_inode(i + 3);
        d2.name = "e" + std::to_string(i % 11);
        d2.type = ns::INodeType::kDirectory;
        chain.push_back(d2);
        chain.push_back(make_inode(i + 4));
        chains.push_back(std::move(chain));
    }
    cache::MetadataCache cache;
    size_t i = 0;
    for (auto _ : state) {
        cache.put_chain(chains[i % chains.size()]);
        ++i;
    }
}
BENCHMARK(BM_CachePutChain);

void
BM_CachePrefixInvalidate(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        cache::MetadataCache cache;
        for (int i = 0; i < state.range(0); ++i) {
            cache.put("/sub/d" + std::to_string(i % 16) + "/f" +
                          std::to_string(i),
                      make_inode(i));
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(cache.invalidate_prefix("/sub"));
    }
}
BENCHMARK(BM_CachePrefixInvalidate)->Arg(4096);

void
BM_ConsistentHashLookup(benchmark::State& state)
{
    ConsistentHashRing ring(64);
    for (int m = 0; m < 16; ++m) {
        ring.add_member(m);
    }
    auto paths = make_paths(1024);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ring.lookup(paths[i % paths.size()]));
        ++i;
    }
}
BENCHMARK(BM_ConsistentHashLookup);

void
BM_PathSplit(benchmark::State& state)
{
    std::string p = "/a/b/c/d/e/file.txt";
    for (auto _ : state) {
        benchmark::DoNotOptimize(path::split(p));
    }
}
BENCHMARK(BM_PathSplit);

void
BM_PathViewZeroAlloc(benchmark::State& state)
{
    std::string p = "/a/b/c/d/e/file.txt";
    for (auto _ : state) {
        int n = 0;
        for (std::string_view c : path::PathView(p)) {
            benchmark::DoNotOptimize(c);
            ++n;
        }
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_PathViewZeroAlloc);

void
BM_HistogramRecord(benchmark::State& state)
{
    sim::Histogram histogram;
    int64_t v = 1;
    for (auto _ : state) {
        histogram.record(v);
        v = (v * 31) % 1000000 + 1;
    }
}
BENCHMARK(BM_HistogramRecord);

void
BM_NsResolveIds(benchmark::State& state)
{
    // The id-centric resolve over the slab-resident hot tier (budget
    // unset): one hash probe per component, no INode materialization.
    ns::NamespaceTree tree;
    ns::UserContext user{0, 0};
    ns::BuiltTree built = ns::build_wide_subtree(
        tree, "/bench", state.range(0), /*fanout=*/16, user, 0);
    ns::IdChain chain;
    size_t i = 0;
    for (auto _ : state) {
        const std::string& p = built.files[i % built.files.size()];
        benchmark::DoNotOptimize(
            tree.resolve_ids(p, user, ns::Follow::kFinal, &chain));
        ++i;
    }
}
BENCHMARK(BM_NsResolveIds)->Arg(65536);

void
BM_NsLookupChild(benchmark::State& state)
{
    // Single directory-table probe: intern-free lookup by (parent, name).
    ns::NamespaceTree tree;
    ns::UserContext user{0, 0};
    ns::build_wide_subtree(tree, "/bench", 4096, /*fanout=*/16, user, 0);
    std::vector<std::string> names;
    for (int i = 0; i < 16; ++i) {
        names.push_back("d" + std::to_string(i));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.lookup_child(ns::kRootId, names[i % names.size()]));
        ++i;
    }
}
BENCHMARK(BM_NsLookupChild);

void
BM_NsCreate(benchmark::State& state)
{
    // Path-checked file creation into one directory (slab append, name
    // intern, child-table insert).
    ns::NamespaceTree tree;
    ns::UserContext user{0, 0};
    if (!tree.mkdirs("/bench", user, 0).ok()) {
        state.SkipWithError("mkdirs failed");
        return;
    }
    int i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.create_file("/bench/f" + std::to_string(i), user, i));
        ++i;
    }
}
BENCHMARK(BM_NsCreate);

void
BM_EventLoopScheduleStep(benchmark::State& state)
{
    sim::Simulation sim;
    sim::Rng rng(1);
    int sink = 0;
    for (auto _ : state) {
        sim.schedule(rng.uniform_int(1, 1000), [&sink] { ++sink; });
        sim.step();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventLoopScheduleStep);

}  // namespace

BENCHMARK_MAIN();
