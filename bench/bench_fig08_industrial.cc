/**
 * @file
 * Figure 8 (a,b,c) — the industrial (Spotify) workload: throughput
 * timelines for λFS, HopsFS, HopsFS+Cache, cost-normalized
 * HopsFS+Cache, and reduced-cache λFS at base rates of 25k and 50k
 * ops/sec (scaled by LFS_BENCH_SCALE), the active-NameNode series, and
 * the performance-per-cost timeline of Figure 8(c).
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "common/harness.h"
#include "src/cost/pricing.h"

namespace lfs::bench {
namespace {

struct SystemRun {
    std::string label;
    IndustrialRun run;
};

IndustrialRun
run_lambda(double vcpus, int num_vms, int clients_per_vm, double store_scale,
           workload::SpotifyConfig wcfg, double cache_fraction_of_wss)
{
    sim::Simulation sim;
    core::LambdaFsConfig config =
        make_lambda_config(vcpus, num_vms, clients_per_vm, store_scale);
    auto fs = std::make_unique<core::LambdaFs>(sim, config);
    ns::BuiltTree tree = build_scaled_tree(fs->authoritative_tree(), scale());
    if (cache_fraction_of_wss > 0) {
        // Reduced-cache variant: per-deployment budget under half of the
        // working-set share (§5.2.3). Rebuild with the smaller cache.
        size_t wss = fs->authoritative_tree().total_metadata_bytes();
        size_t per_deployment =
            static_cast<size_t>(static_cast<double>(wss) /
                                config.num_deployments *
                                cache_fraction_of_wss);
        sim::Simulation sim2;
        core::LambdaFsConfig reduced = config;
        reduced.name_node.cache_bytes = per_deployment;
        auto fs2 = std::make_unique<core::LambdaFs>(sim2, reduced);
        ns::BuiltTree tree2 =
            build_scaled_tree(fs2->authoritative_tree(), scale());
        return run_industrial(sim2, *fs2, std::move(tree2), wcfg);
    }
    return run_industrial(sim, *fs, std::move(tree), wcfg);
}

IndustrialRun
run_hops(const std::string& label, double vcpus, bool cache, int num_vms,
         int clients_per_vm, double store_scale,
         workload::SpotifyConfig wcfg)
{
    sim::Simulation sim;
    hopsfs::HopsFsConfig config = make_hops_config(
        label, vcpus, cache, num_vms, clients_per_vm, store_scale);
    auto fs = std::make_unique<hopsfs::HopsFs>(sim, config);
    ns::BuiltTree tree = build_scaled_tree(fs->authoritative_tree(), scale());
    return run_industrial(sim, *fs, std::move(tree), wcfg);
}

void
print_timeline(const std::vector<SystemRun>& runs, int lambda_index)
{
    std::printf("\n  %-6s", "t(s)");
    for (const auto& r : runs) {
        std::printf(" %14s", r.label.c_str());
    }
    std::printf(" %10s\n", "lfs-NNs");
    size_t seconds = runs.front().run.throughput.size();
    for (size_t t = 0; t < seconds; t += 10) {
        std::printf("  %-6zu", t);
        for (const auto& r : runs) {
            double v = t < r.run.throughput.size() ? r.run.throughput[t] : 0;
            std::printf(" %14.0f", v);
        }
        double nns =
            t < runs[static_cast<size_t>(lambda_index)].run.name_nodes.size()
                ? runs[static_cast<size_t>(lambda_index)].run.name_nodes[t]
                : 0;
        std::printf(" %10.1f\n", nns);
    }
}

void
print_summary(const std::vector<SystemRun>& runs)
{
    std::printf("\n  %-18s %12s %12s %12s %12s %12s %12s\n", "system",
                "avg ops/s", "peak ops/s", "avg lat ms", "read lat",
                "write lat", "cost $");
    for (const auto& r : runs) {
        std::printf("  %-18s %12.0f %12.0f %12.2f %12.2f %12.2f %12.4f\n",
                    r.label.c_str(), r.run.avg_throughput,
                    r.run.peak_throughput, r.run.avg_latency_ms,
                    r.run.read_latency_ms, r.run.write_latency_ms,
                    r.run.total_cost);
    }
}

void
print_perf_per_cost(const SystemRun& lambda, const SystemRun& hops_cache,
                    const char* tag)
{
    std::printf("\n  Figure 8(c) — performance-per-cost (%s), every 30 s:\n",
                tag);
    std::printf("  %-6s %16s %16s\n", "t(s)", "lambda-fs", "hopsfs+cache");
    size_t seconds = lambda.run.throughput.size();
    for (size_t t = 0; t < seconds; t += 30) {
        double l = cost::perf_per_cost(lambda.run.throughput[t],
                                       lambda.run.cost_per_s[t]);
        double h = cost::perf_per_cost(hops_cache.run.throughput[t],
                                       hops_cache.run.cost_per_s[t]);
        std::printf("  %-6zu %16.3g %16.3g\n", t, l, h);
    }
    double lambda_total = cost::perf_per_cost(lambda.run.avg_throughput,
                                              lambda.run.total_cost);
    double hops_total = cost::perf_per_cost(hops_cache.run.avg_throughput,
                                            hops_cache.run.total_cost);
    std::printf("  overall: lambda-fs %.3g ops/s/$, hopsfs+cache %.3g "
                "ops/s/$ (ratio %.2fx)\n",
                lambda_total, hops_total,
                hops_total > 0 ? lambda_total / hops_total : 0.0);
}

void
run_workload(double base_rate, const char* tag, bool include_reduced_cache)
{
    double s = scale();
    int num_vms = 8;
    int clients_per_vm = std::max(1, static_cast<int>(1024 * s) / num_vms);
    double vcpus = 512.0 * s;
    workload::SpotifyConfig wcfg;
    wcfg.base_throughput = base_rate * s;
    wcfg.duration = sim::sec(env_int("LFS_DURATION", 240));
    wcfg.num_client_vms = num_vms;

    std::printf("\n--- Spotify workload, base %.0f ops/s (paper: %s) ---\n",
                wcfg.base_throughput, tag);
    std::printf("  clients=%d platform vCPUs=%.0f duration=%llds\n",
                clients_per_vm * num_vms, vcpus,
                static_cast<long long>(wcfg.duration / sim::sec(1)));

    std::vector<SystemRun> runs;
    // §5.2.1: for the 25k workload λFS gets 50% of HopsFS' vCPUs.
    double lambda_vcpus = include_reduced_cache ? vcpus / 2 : vcpus;
    runs.push_back({"lambda-fs",
                    run_lambda(lambda_vcpus, num_vms, clients_per_vm, s,
                               wcfg, 0.0)});
    runs.push_back({"hopsfs", run_hops("hopsfs", vcpus, false, num_vms,
                                       clients_per_vm, s, wcfg)});
    runs.push_back({"hopsfs+cache",
                    run_hops("hopsfs+cache", vcpus, true, num_vms,
                             clients_per_vm, s, wcfg)});
    // Cost-normalized HopsFS+Cache: 72/512 (25k) or 144/512 (50k) vCPUs.
    double cn_fraction = include_reduced_cache ? 72.0 / 512.0 : 144.0 / 512.0;
    runs.push_back({"cn-hopsfs+cache",
                    run_hops("cn-hopsfs+cache", vcpus * cn_fraction, true,
                             num_vms, clients_per_vm, s, wcfg)});
    if (include_reduced_cache) {
        runs.push_back({"lfs-reduced-cache",
                        run_lambda(lambda_vcpus, num_vms, clients_per_vm, s,
                                   wcfg, 0.4)});
    }

    print_timeline(runs, 0);
    print_summary(runs);
    print_perf_per_cost(runs[0], runs[2], tag);

    const IndustrialRun& lambda = runs[0].run;
    const IndustrialRun& hops = runs[1].run;
    const IndustrialRun& hops_cache = runs[2].run;
    std::printf("\n  Checks (%s):\n", tag);
    print_check("lambda-fs avg throughput > hopsfs (1.19x at 25k, 2.02x at 50k)",
                fmt(lambda.avg_throughput / hops.avg_throughput) + "x");
    print_check("lambda-fs avg latency well below hopsfs (10.4x at 25k)",
                fmt(hops.avg_latency_ms / lambda.avg_latency_ms) +
                    "x lower");
    print_check("lambda-fs peak sustained >> hopsfs peak (4.3x/5.6x)",
                fmt(lambda.peak_throughput / hops.peak_throughput) + "x");
    print_check("lambda-fs read latency 6.9-20x lower than hopsfs",
                fmt(hops.read_latency_ms / lambda.read_latency_ms) + "x");
    print_check("hopsfs write latency 1.5-5.6x lower than lambda-fs",
                fmt(lambda.write_latency_ms / hops.write_latency_ms) + "x");
    print_check("lambda-fs cost ~86% below hopsfs (7.14x)",
                fmt(hops.total_cost / lambda.total_cost) + "x cheaper");
    print_check("lambda-fs ~= hopsfs+cache throughput, ~3.3x lower latency",
                fmt(lambda.avg_throughput / hops_cache.avg_throughput) +
                    "x tput, " +
                    fmt(hops_cache.avg_latency_ms / lambda.avg_latency_ms) +
                    "x lat");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner(
        "Figure 8", "Industrial (Spotify) workload: throughput, elasticity, "
                    "and performance-per-cost");
    lfs::bench::run_workload(25000.0, "25k ops/s",
                             /*include_reduced_cache=*/true);
    lfs::bench::run_workload(50000.0, "50k ops/s",
                             /*include_reduced_cache=*/false);
    return 0;
}
