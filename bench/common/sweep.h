/**
 * @file
 * Parallel experiment fabric for the sweep harnesses (DESIGN.md §14).
 *
 * A sweep is a grid of independent points — (op, system, clients) for
 * Figure 11, (system, scenario) for the lifecycle sweep — each of which
 * builds its own Simulation from scratch. SweepRunner forks one child
 * process per point (at most sweep_jobs() concurrently), captures each
 * child's stdout and observability fragments into per-point temp files,
 * and merges everything back in deterministic grid (add()) order, so the
 * merged stdout, --metrics-out, --trace-out, and --bench-log artifacts
 * are byte-identical to a serial run — wall-clock [perf] figures aside —
 * no matter how completions interleave.
 *
 * Determinism contract:
 *   - every point's simulation is self-contained (fresh Simulation,
 *     seed derived from the point's label via sweep_seed), so results
 *     cannot depend on execution order or concurrency;
 *   - children inherit the parent's environment and observability
 *     options, reset the accumulated fragment state (so a child ships
 *     only its own runs), and _exit(0) without running atexit writers;
 *   - the parent replays captured stdout and absorbs fragments strictly
 *     in add() order, then writes artifacts once at exit as usual.
 *
 * LFS_SWEEP_JOBS selects the fan-out (default: hardware concurrency);
 * 1 runs every body inline in add() order — the exact legacy serial
 * path with no fork, capture, or merge involved.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace lfs::bench {

/**
 * Deterministic per-point seed: FNV-1a of the point's label. Labels are
 * unique within a sweep, so distinct points draw distinct, reproducible
 * seeds regardless of grid shape or execution order.
 */
uint64_t sweep_seed(std::string_view label);

/** LFS_SWEEP_JOBS (default: hardware concurrency, minimum 1). */
int sweep_jobs();

class SweepRunner {
  public:
    /**
     * One grid point: prints everything the point contributes to stdout
     * and returns the machine-readable payload the harness merges after
     * the sweep (parsed by the caller; opaque to the runner).
     */
    using Body = std::function<std::string()>;

    /** Register a point. @p label must be unique within the sweep. */
    void add(std::string label, Body body);

    /**
     * Run every registered point and return payloads in add() order.
     * Serial (sweep_jobs() == 1) runs bodies inline; parallel forks a
     * child per point and merges. A failed child aborts the sweep with
     * the offending label on stderr.
     */
    std::vector<std::string> run();

  private:
    struct Point {
        std::string label;
        Body body;
    };

    std::vector<Point> points_;
};

}  // namespace lfs::bench
