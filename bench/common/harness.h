/**
 * @file
 * Shared infrastructure for the experiment harnesses (one binary per
 * paper table/figure). Provides standard system configurations, scaled
 * experiment sizing (LFS_BENCH_SCALE), benchmark-tree construction, cost
 * sampling, and uniform output formatting with PAPER-vs-MEASURED notes.
 *
 * Scaling: the paper's testbed runs 1024 clients against 512 vCPUs for
 * 300 s at 25k-50k ops/s base rates. The simulator reproduces *shape*
 * (ratios, crossovers, trends); to keep harness runtimes reasonable the
 * industrial-workload experiments scale clients, rates, platform vCPUs,
 * and store capacity by LFS_BENCH_SCALE (default 0.125) — the ratios
 * between systems are scale-invariant. Microbenchmark experiments keep
 * the paper's client counts/vCPUs and reduce only ops-per-client
 * (LFS_OPS_PER_CLIENT, default 192 vs the paper's 3072).
 */
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/cephfs/cephfs.h"
#include "src/core/lambda_fs.h"
#include "src/hopsfs/hopsfs.h"
#include "src/indexfs/indexfs.h"
#include "src/indexfs/lambda_indexfs.h"
#include "src/infinicache/infinicache.h"
#include "src/namespace/tree_builder.h"
#include "src/workload/dfs_interface.h"
#include "src/workload/spotify_workload.h"

namespace lfs::bench {

// ----------------------------------------------------------------------
// Observability artifacts (--trace-out= / --metrics-out=)
// ----------------------------------------------------------------------

/** Output paths requested on the command line (empty = off). */
struct ObservabilityOptions {
    std::string trace_out;    ///< Chrome trace_event JSON path
    std::string metrics_out;  ///< metrics-registry JSON path
    std::string bench_log;    ///< perf-trajectory JSONL path (appended)
    bool attribution = false; ///< per-op latency attribution ledger
};

/**
 * Parse `--trace-out=PATH` / `--metrics-out=PATH` / `--attribution` /
 * `--bench-log=PATH` (also honoured via the LFS_TRACE_OUT /
 * LFS_METRICS_OUT / LFS_ATTRIBUTION / LFS_BENCH_LOG environment
 * variables) and register an atexit hook that writes the accumulated
 * artifacts. `--bench-log` appends one dated JSON line per process run
 * to the named trajectory file (see scripts/perf_smoke.sh). Call first
 * thing in every bench main(); unknown arguments are ignored.
 */
void parse_args(int argc, char** argv);

const ObservabilityOptions& observability();

/**
 * Enable tracing on @p sim when --trace-out was requested, and the
 * attribution ledger + tail-exemplar flight recorder when --attribution
 * was. Exemplars carry span trees only when the tracer is armed too
 * (span capture is priced as a tracing cost, not an attribution cost).
 * Harnesses that build their own Simulation (not via
 * make_system/run_industrial) should call this after construction.
 */
void arm_observability(sim::Simulation& sim);

/**
 * Kernel self-profile of one run: simulated events dispatched, wall-clock
 * seconds since arm_observability(), their ratio, and the high-water mark
 * of the event queue. Printed for every observed run and embedded in the
 * metrics JSON under "perf" (the perf-smoke gate parses the printed line).
 */
struct RunPerf {
    uint64_t events = 0;
    double wall_seconds = 0.0;
    double events_per_sec = 0.0;
    size_t peak_backlog = 0;
};

/** Current self-profile of @p sim (timer keeps running). */
RunPerf run_perf(const sim::Simulation& sim);

/**
 * Append one case entry to this process's --bench-log trajectory line
 * (no-op when --bench-log is off). For harnesses that measure wall-clock
 * performance outside a Simulation run (bench_kernel's cases); observe_run
 * adds its entries automatically.
 */
void bench_log_entry(const std::string& label, uint64_t events,
                     double wall_seconds, double events_per_sec);

/**
 * Capture @p sim's trace + metric state as one labelled run in the output
 * artifacts (each run gets its own pid in the Chrome trace). Prints the
 * run's events/sec self-profile, and the flame summary when tracing is
 * on. Safe to call when both flags are off.
 */
void observe_run(sim::Simulation& sim, const std::string& label);

/**
 * RAII pairing of arm_observability() (construction) and observe_run()
 * (destruction) for harnesses that build their own Simulation per run
 * block. Declare right after the Simulation so the capture happens
 * while it is still alive.
 */
class ScopedRunObservation {
  public:
    ScopedRunObservation(sim::Simulation& sim, std::string label)
        : sim_(sim), label_(std::move(label))
    {
        arm_observability(sim_);
    }
    ScopedRunObservation(const ScopedRunObservation&) = delete;
    ScopedRunObservation& operator=(const ScopedRunObservation&) = delete;
    ~ScopedRunObservation() { observe_run(sim_, label_); }

  private:
    sim::Simulation& sim_;
    std::string label_;
};

/** LFS_BENCH_SCALE (default 0.125). */
double scale();

/** LFS_OPS_PER_CLIENT (default 192). */
int ops_per_client();

/**
 * Integer env with default. Unset or empty uses @p fallback; anything
 * that does not parse cleanly to the end (e.g. LFS_SWEEP_JOBS=4x) aborts
 * the process naming the variable — a mistyped knob must never silently
 * truncate into a different experiment.
 */
int env_int(const char* name, int fallback);

/** Double env with default; same strict-parse contract as env_int. */
double env_double(const char* name, double fallback);

// ----------------------------------------------------------------------
// Sweep-child plumbing (internal; used by bench::SweepRunner)
// ----------------------------------------------------------------------

namespace detail {

/**
 * Observability state accumulated by observe_run()/bench_log_entry() in
 * one process — shipped from forked sweep children to the parent, which
 * absorbs them in grid order so the artifacts written at exit match a
 * serial run.
 */
struct HarnessFragments {
    std::vector<std::string> trace;
    std::vector<std::string> metrics;
    std::vector<std::string> bench_log;
};

/**
 * Start a sweep point in the serial (inline) path: offset Chrome-trace
 * pids by @p trace_pid_base and restart per-point pid numbering, so a
 * jobs=1 trace is byte-identical to the merged trace of a forked run.
 */
void sweep_point_begin(int trace_pid_base);

/**
 * Mark this process as a forked sweep child: clear fragments accumulated
 * before the fork, offset Chrome-trace pids by @p trace_pid_base (so the
 * per-point pid ranges stay disjoint across children), and suppress the
 * atexit artifact writers — only the parent writes files.
 */
void sweep_child_begin(int trace_pid_base);

/** Move this process's accumulated fragments out (child serialization). */
HarnessFragments take_fragments();

/** Append a child's fragments (parent merge, called in grid order). */
void absorb_fragments(HarnessFragments fragments);

}  // namespace detail

// ----------------------------------------------------------------------
// Standard system configurations (§5.1)
// ----------------------------------------------------------------------

/** Store configuration; capacity scales with @p s for industrial runs. */
store::StoreConfig make_store_config(double s = 1.0);

/** λFS with a given platform vCPU budget and client fleet. */
core::LambdaFsConfig make_lambda_config(double total_vcpus, int num_vms,
                                        int clients_per_vm,
                                        double store_scale = 1.0);

/** HopsFS / HopsFS+Cache with a given NameNode vCPU budget. */
hopsfs::HopsFsConfig make_hops_config(const std::string& label,
                                      double total_vcpus, bool cache,
                                      int num_vms, int clients_per_vm,
                                      double store_scale = 1.0);

infinicache::InfiniCacheConfig make_infinicache_config(double total_vcpus,
                                                       int num_vms,
                                                       int clients_per_vm,
                                                       double store_scale =
                                                           1.0);

cephfs::CephFsConfig make_cephfs_config(int num_vms, int clients_per_vm);

// ----------------------------------------------------------------------
// Benchmark namespaces
// ----------------------------------------------------------------------

/** The standard microbenchmark tree (≈26k files across ≈5k dirs). */
ns::BuiltTree build_bench_tree(ns::NamespaceTree& tree);

/** A smaller tree whose size tracks the bench scale (industrial runs). */
ns::BuiltTree build_scaled_tree(ns::NamespaceTree& tree, double s);

// ----------------------------------------------------------------------
// System construction for microbenchmark sweeps
// ----------------------------------------------------------------------

/** One freshly built system under test with its own simulation. */
struct SystemInstance {
    std::unique_ptr<sim::Simulation> sim;
    std::unique_ptr<workload::Dfs> dfs;
    ns::BuiltTree tree;
    // Last member: captured (destroyed) before the simulation it reads.
    std::unique_ptr<ScopedRunObservation> observer;
};

/**
 * Build a system by kind ("lambda-fs", "hopsfs", "hopsfs+cache",
 * "infinicache", "cephfs") with @p total_vcpus of metadata-service
 * resources and @p num_clients clients, plus the standard bench tree.
 */
SystemInstance make_system(const std::string& kind, double total_vcpus,
                           int num_clients);

/** The five systems of Figures 11/12. */
std::vector<std::string> microbench_systems();

/** The five operations of Figures 11/12/14. */
std::vector<OpType> microbench_ops();

// ----------------------------------------------------------------------
// Industrial workload execution
// ----------------------------------------------------------------------

struct IndustrialRun {
    std::string system;
    std::vector<double> throughput;   ///< ops/sec per second
    std::vector<double> name_nodes;   ///< active NN count per second
    std::vector<double> cost_per_s;   ///< $ accrued in each second
    std::vector<double> simplified_cost_per_s;
    double avg_throughput = 0.0;
    double avg_latency_ms = 0.0;
    double read_latency_ms = 0.0;
    double write_latency_ms = 0.0;
    double peak_throughput = 0.0;
    double total_cost = 0.0;
    double total_simplified_cost = 0.0;
    int64_t completed = 0;
    int64_t offered = 0;
    /** Ops the system shed at admission (RESOURCE_EXHAUSTED outcomes). */
    int64_t ops_shed = 0;
    /** Ops that ran out of deadline (DEADLINE_EXCEEDED outcomes). */
    int64_t ops_deadline_missed = 0;
    /** The system's overload-control tallies (zeros when it has none). */
    workload::DegradationStats degradation;
    const workload::SystemMetrics* metrics = nullptr;  ///< run-owned
};

/**
 * Run the Spotify workload against @p dfs inside @p sim and collect the
 * per-second series. @p warmup simulated seconds precede the measured
 * window. Uses simplified-cost sampling when @p dfs is FaaS-based.
 */
IndustrialRun run_industrial(sim::Simulation& sim, workload::Dfs& dfs,
                             ns::BuiltTree tree,
                             workload::SpotifyConfig config,
                             sim::SimTime warmup = sim::sec(5));

// ----------------------------------------------------------------------
// Output formatting
// ----------------------------------------------------------------------

void print_banner(const char* experiment, const char* title);

/**
 * Graceful-degradation summary for one industrial run: offered vs
 * admitted vs completed-in-deadline, plus where work was shed (gateway,
 * store, breaker) and how retries were capped. Printed automatically by
 * run_industrial when any overload activity occurred; pass @p always to
 * print the (all-zero) table regardless.
 */
void print_degradation_summary(const IndustrialRun& run, bool always = false);

/** "PAPER: ... | MEASURED: ..." comparison line. */
void print_check(const char* claim, const std::string& measured);

std::string fmt(double v, int precision = 2);

}  // namespace lfs::bench
