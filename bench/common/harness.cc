#include "harness.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <unordered_map>

namespace lfs::bench {

namespace {

ObservabilityOptions g_observability;
/** Basename of the running bench binary (for bench-log entries). */
std::string g_bench_name;
/** True in a forked sweep child: artifact writers stay parent-only. */
bool g_sweep_child = false;
/** Chrome-trace pid offset for this process's observed runs. */
int g_trace_pid_base = 0;

/**
 * Fragment count at the current sweep point's start: pids restart from
 * the point's base in the serial path exactly as they do in a forked
 * child (whose fragment vector is empty), so traces are byte-identical
 * at any LFS_SWEEP_JOBS.
 */
size_t g_trace_fragment_floor = 0;
/**
 * Wall-clock start per armed Simulation — arm_observability() starts the
 * timer, observe_run() reports events/sec against it. Keyed by address;
 * an entry is erased when its run is observed.
 */
std::unordered_map<const sim::Simulation*,
                   std::chrono::steady_clock::time_point>
    g_run_started;
// Per-run fragments accumulated by observe_run(); written at exit.
std::vector<std::string> g_trace_fragments;
std::vector<std::string> g_metrics_fragments;
// Per-run perf/attribution summaries for the --bench-log trajectory.
std::vector<std::string> g_bench_log_runs;

void
write_observability_artifacts()
{
    if (g_sweep_child) {
        return;  // the sweep parent writes merged artifacts
    }
    if (!g_observability.trace_out.empty()) {
        std::FILE* f = std::fopen(g_observability.trace_out.c_str(), "w");
        if (f != nullptr) {
            std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
            bool first = true;
            for (const std::string& fragment : g_trace_fragments) {
                if (fragment.empty()) {
                    continue;
                }
                if (!first) {
                    std::fputs(",\n", f);
                }
                first = false;
                std::fputs(fragment.c_str(), f);
            }
            std::fputs("\n]}\n", f);
            std::fclose(f);
            std::printf("wrote trace: %s\n",
                        g_observability.trace_out.c_str());
        } else {
            std::fprintf(stderr, "cannot write trace: %s\n",
                         g_observability.trace_out.c_str());
        }
    }
    if (!g_observability.metrics_out.empty()) {
        std::FILE* f = std::fopen(g_observability.metrics_out.c_str(), "w");
        if (f != nullptr) {
            std::fputs("{\"runs\":[\n", f);
            for (size_t i = 0; i < g_metrics_fragments.size(); ++i) {
                if (i > 0) {
                    std::fputs(",\n", f);
                }
                std::fputs(g_metrics_fragments[i].c_str(), f);
            }
            std::fputs("\n]}\n", f);
            std::fclose(f);
            std::printf("wrote metrics: %s\n",
                        g_observability.metrics_out.c_str());
        } else {
            std::fprintf(stderr, "cannot write metrics: %s\n",
                         g_observability.metrics_out.c_str());
        }
    }
}

/**
 * Append one dated JSON line — the process's runs with their kernel
 * self-profiles and attribution means — to the --bench-log trajectory
 * file. One line per bench invocation keeps the checked-in BENCH_*.json
 * files readable as a time series of the repo's own performance.
 */
void
append_bench_log()
{
    if (g_sweep_child || g_bench_log_runs.empty()) {
        return;
    }
    std::FILE* f = std::fopen(g_observability.bench_log.c_str(), "a");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot append bench log: %s\n",
                     g_observability.bench_log.c_str());
        return;
    }
    char date[32] = "unknown";
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc) != nullptr) {
        std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    }
    std::fputs("{\"date\":", f);
    std::fputs(sim::json_quote(date).c_str(), f);
    std::fputs(",\"bench\":", f);
    std::fputs(sim::json_quote(g_bench_name).c_str(), f);
    std::fputs(",\"runs\":[", f);
    for (size_t i = 0; i < g_bench_log_runs.size(); ++i) {
        if (i > 0) {
            std::fputs(",", f);
        }
        std::fputs(g_bench_log_runs[i].c_str(), f);
    }
    std::fputs("]}\n", f);
    std::fclose(f);
    std::printf("appended bench log: %s (%zu runs)\n",
                g_observability.bench_log.c_str(), g_bench_log_runs.size());
}

/**
 * Print the per-segment latency attribution table for every system that
 * recorded ledgers into @p sim's registry. Segment histograms hold only
 * the ops where the segment saw time, so mean_ms/p50/p99 are conditional
 * on occurrence; the additive quantity is the *contribution*
 * mean x count / total ops, and because each finalized ledger sums to
 * its op's end-to-end latency, the printed sum of contributions always
 * matches the end-to-end mean exactly.
 */
void
print_attribution_tables(sim::Simulation& sim, const std::string& label)
{
    // system label -> (segment name -> histogram)
    std::map<std::string, std::map<std::string, const sim::Histogram*>>
        by_system;
    std::map<std::string, const sim::Histogram*> totals;
    sim.metrics().for_each_histogram(
        "attr.segment",
        [&](const sim::MetricLabels& labels, const sim::Histogram& h) {
            std::string system, seg;
            for (const auto& [k, v] : labels) {
                if (k == "system") {
                    system = v;
                } else if (k == "seg") {
                    seg = v;
                }
            }
            by_system[system][seg] = &h;
        });
    sim.metrics().for_each_histogram(
        "attr.total",
        [&](const sim::MetricLabels& labels, const sim::Histogram& h) {
            for (const auto& [k, v] : labels) {
                if (k == "system") {
                    totals[v] = &h;
                }
            }
        });
    for (const auto& [system, segs] : by_system) {
        auto total_it = totals.find(system);
        const sim::Histogram* total =
            total_it != totals.end() ? total_it->second : nullptr;
        if (total == nullptr || total->count() == 0) {
            continue;
        }
        double e2e_mean_ms = total->mean() / 1e3;
        std::printf("  [attribution] %s (%s): ops=%llu e2e mean=%.3f ms "
                    "p50=%.3f ms p99=%.3f ms\n",
                    label.c_str(), system.c_str(),
                    static_cast<unsigned long long>(total->count()),
                    e2e_mean_ms, static_cast<double>(total->p50()) / 1e3,
                    static_cast<double>(total->p99()) / 1e3);
        std::printf("    %-18s %10s %10s %10s %10s %7s\n", "segment",
                    "count", "mean_ms", "p50_ms", "p99_ms", "share%");
        double contrib_sum_ms = 0.0;
        double ops = static_cast<double>(total->count());
        // Enum order, not registry (alphabetical) order: the table reads
        // client -> gateway -> NameNode -> store top to bottom.
        for (size_t i = 0; i < sim::kLatSegCount; ++i) {
            const char* name =
                sim::lat_seg_name(static_cast<sim::LatSeg>(i));
            auto it = segs.find(name);
            if (it == segs.end()) {
                continue;
            }
            const sim::Histogram& h = *it->second;
            if (h.count() == 0) {
                continue;  // segment never saw time in this run
            }
            double contrib_ms =
                h.mean() / 1e3 * static_cast<double>(h.count()) / ops;
            contrib_sum_ms += contrib_ms;
            double share =
                e2e_mean_ms > 0.0 ? 100.0 * contrib_ms / e2e_mean_ms : 0.0;
            std::printf("    %-18s %10llu %10.3f %10.3f %10.3f %6.1f%%\n",
                        name, static_cast<unsigned long long>(h.count()),
                        h.mean() / 1e3, static_cast<double>(h.p50()) / 1e3,
                        static_cast<double>(h.p99()) / 1e3, share);
        }
        std::printf("    sum of segment contributions = %.3f ms "
                    "(e2e mean %.3f ms)\n",
                    contrib_sum_ms, e2e_mean_ms);
    }
}

/** JSON object of per-system attribution means for the bench log. */
std::string
attribution_json(sim::Simulation& sim)
{
    std::string out = "{";
    bool first_system = true;
    std::map<std::string, std::string> by_system;
    sim.metrics().for_each_histogram(
        "attr.segment",
        [&](const sim::MetricLabels& labels, const sim::Histogram& h) {
            if (h.count() == 0 || h.max() == 0) {
                return;
            }
            std::string system, seg;
            for (const auto& [k, v] : labels) {
                if (k == "system") {
                    system = v;
                } else if (k == "seg") {
                    seg = v;
                }
            }
            std::string& buf = by_system[system];
            if (!buf.empty()) {
                buf += ",";
            }
            buf += sim::json_quote(seg) + ":" + fmt(h.mean(), 1);
        });
    for (const auto& [system, buf] : by_system) {
        if (!first_system) {
            out += ",";
        }
        first_system = false;
        out += sim::json_quote(system) + ":{" + buf + "}";
    }
    out += "}";
    return out;
}

}  // namespace

void
parse_args(int argc, char** argv)
{
    if (argc > 0 && argv[0] != nullptr) {
        const char* slash = std::strrchr(argv[0], '/');
        g_bench_name = slash != nullptr ? slash + 1 : argv[0];
    }
    if (const char* v = std::getenv("LFS_TRACE_OUT")) {
        g_observability.trace_out = v;
    }
    if (const char* v = std::getenv("LFS_METRICS_OUT")) {
        g_observability.metrics_out = v;
    }
    if (const char* v = std::getenv("LFS_BENCH_LOG")) {
        g_observability.bench_log = v;
    }
    if (const char* v = std::getenv("LFS_ATTRIBUTION")) {
        g_observability.attribution = std::strcmp(v, "0") != 0;
    }
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--trace-out=", 0) == 0) {
            g_observability.trace_out = arg.substr(12);
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            g_observability.metrics_out = arg.substr(14);
        } else if (arg.rfind("--bench-log=", 0) == 0) {
            g_observability.bench_log = arg.substr(12);
        } else if (arg == "--attribution") {
            g_observability.attribution = true;
        }
    }
    if (!g_observability.trace_out.empty() ||
        !g_observability.metrics_out.empty()) {
        std::atexit(write_observability_artifacts);
    }
    if (!g_observability.bench_log.empty()) {
        std::atexit(append_bench_log);
    }
}

const ObservabilityOptions&
observability()
{
    return g_observability;
}

void
arm_observability(sim::Simulation& sim)
{
    // Keep the earliest start: run_industrial re-arms a Simulation that a
    // ScopedRunObservation already armed at construction.
    g_run_started.emplace(&sim, std::chrono::steady_clock::now());
    if (!g_observability.trace_out.empty()) {
        sim.tracer().set_enabled(true);
    }
    if (g_observability.attribution) {
        // Ledger stamping + per-segment histograms + worst-k reservoir:
        // the cheap accounting stack, gated at <5% overhead by
        // bench_kernel's attribution audit. Exemplar span trees are a
        // tracing feature — they appear when --trace-out also arms the
        // tracer; attribution alone keeps exemplars ledger-only.
        sim.set_attribution(true);
        sim.flight_recorder().set_enabled(true);
    }
}

RunPerf
run_perf(const sim::Simulation& sim)
{
    RunPerf perf;
    perf.events = sim.events_executed();
    perf.peak_backlog = sim.peak_pending();
    auto it = g_run_started.find(&sim);
    if (it != g_run_started.end()) {
        perf.wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - it->second)
                                .count();
    }
    if (perf.wall_seconds > 0.0) {
        perf.events_per_sec =
            static_cast<double>(perf.events) / perf.wall_seconds;
    }
    return perf;
}

void
bench_log_entry(const std::string& label, uint64_t events,
                double wall_seconds, double events_per_sec)
{
    if (g_observability.bench_log.empty()) {
        return;
    }
    g_bench_log_runs.push_back(
        "{\"label\":" + sim::json_quote(label) +
        ",\"events\":" + std::to_string(events) +
        ",\"wall_s\":" + fmt(wall_seconds, 4) +
        ",\"events_per_sec\":" + fmt(events_per_sec, 0) + "}");
}

void
observe_run(sim::Simulation& sim, const std::string& label)
{
    RunPerf perf = run_perf(sim);
    g_run_started.erase(&sim);
    std::printf("  [perf] %s: events=%llu wall_s=%.3f events_per_sec=%.0f "
                "peak_backlog=%zu\n",
                label.c_str(), static_cast<unsigned long long>(perf.events),
                perf.wall_seconds, perf.events_per_sec, perf.peak_backlog);
    if (!g_observability.trace_out.empty()) {
        // One pid per captured run keeps runs separable in Perfetto.
        int pid = g_trace_pid_base +
                  static_cast<int>(g_trace_fragments.size() -
                                   g_trace_fragment_floor) +
                  1;
        g_trace_fragments.push_back(sim.tracer().chrome_trace_events(pid));
        std::printf("\n[trace] %s: %llu spans (%llu dropped)\n%s",
                    label.c_str(),
                    static_cast<unsigned long long>(
                        sim.tracer().spans_started()),
                    static_cast<unsigned long long>(
                        sim.tracer().spans_dropped()),
                    sim.tracer().flame_summary().c_str());
    }
    std::string exemplars;
    if (g_observability.attribution) {
        print_attribution_tables(sim, label);
        std::printf("  [flight-recorder] %s: retained=%zu exemplars\n",
                    label.c_str(), sim.flight_recorder().retained());
        exemplars = sim.flight_recorder().to_json();
    }
    if (!g_observability.metrics_out.empty()) {
        g_metrics_fragments.push_back(
            "{\"system\":" + sim::json_quote(label) +
            ",\"perf\":{\"events\":" + std::to_string(perf.events) +
            ",\"wall_s\":" + fmt(perf.wall_seconds, 4) +
            ",\"events_per_sec\":" + fmt(perf.events_per_sec, 0) +
            ",\"peak_event_backlog\":" + std::to_string(perf.peak_backlog) +
            "}," +
            (exemplars.empty() ? std::string()
                               : "\"exemplars\":" + exemplars + ",") +
            "\"data\":" + sim.metrics().to_json(sim.now()) + "}");
    }
    if (!g_observability.bench_log.empty()) {
        std::string entry =
            "{\"label\":" + sim::json_quote(label) +
            ",\"events\":" + std::to_string(perf.events) +
            ",\"wall_s\":" + fmt(perf.wall_seconds, 4) +
            ",\"events_per_sec\":" + fmt(perf.events_per_sec, 0) +
            ",\"peak_event_backlog\":" + std::to_string(perf.peak_backlog);
        if (g_observability.attribution) {
            entry += ",\"attr_mean_us\":" + attribution_json(sim);
        }
        entry += "}";
        g_bench_log_runs.push_back(std::move(entry));
    }
}

double
scale()
{
    return env_double("LFS_BENCH_SCALE", 0.125);
}

int
ops_per_client()
{
    return env_int("LFS_OPS_PER_CLIENT", 128);
}

int
env_int(const char* name, int fallback)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') {
        return fallback;
    }
    errno = 0;
    char* end = nullptr;
    long parsed = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE ||
        parsed < INT_MIN || parsed > INT_MAX) {
        std::fprintf(stderr, "%s: '%s' is not an integer\n", name, v);
        std::exit(2);
    }
    return static_cast<int>(parsed);
}

double
env_double(const char* name, double fallback)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') {
        return fallback;
    }
    errno = 0;
    char* end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "%s: '%s' is not a number\n", name, v);
        std::exit(2);
    }
    return parsed;
}

namespace detail {

void
sweep_point_begin(int trace_pid_base)
{
    g_trace_pid_base = trace_pid_base;
    g_trace_fragment_floor = g_trace_fragments.size();
}

void
sweep_child_begin(int trace_pid_base)
{
    g_sweep_child = true;
    g_trace_pid_base = trace_pid_base;
    g_trace_fragment_floor = 0;
    g_trace_fragments.clear();
    g_metrics_fragments.clear();
    g_bench_log_runs.clear();
    g_run_started.clear();
}

HarnessFragments
take_fragments()
{
    HarnessFragments fragments;
    fragments.trace = std::move(g_trace_fragments);
    fragments.metrics = std::move(g_metrics_fragments);
    fragments.bench_log = std::move(g_bench_log_runs);
    g_trace_fragments.clear();
    g_metrics_fragments.clear();
    g_bench_log_runs.clear();
    return fragments;
}

void
absorb_fragments(HarnessFragments fragments)
{
    for (std::string& s : fragments.trace) {
        g_trace_fragments.push_back(std::move(s));
    }
    for (std::string& s : fragments.metrics) {
        g_metrics_fragments.push_back(std::move(s));
    }
    for (std::string& s : fragments.bench_log) {
        g_bench_log_runs.push_back(std::move(s));
    }
}

}  // namespace detail

store::StoreConfig
make_store_config(double s)
{
    store::StoreConfig config;
    // The paper's NDB cluster: 4 data nodes. Capacity (slot width) scales
    // with the experiment scale so offered-load/capacity ratios match.
    config.data_node.concurrency =
        std::max(1, static_cast<int>(std::lround(16 * s)));
    return config;
}

core::LambdaFsConfig
make_lambda_config(double total_vcpus, int num_vms, int clients_per_vm,
                   double store_scale)
{
    core::LambdaFsConfig config;
    config.total_vcpus = total_vcpus;
    // Co-scale instance size and deployment count with the pool: the
    // paper uses 6.25-vCPU NameNodes under a 512-vCPU cap; a scaled pool
    // must still fit at least one instance per deployment with headroom
    // (>= 2x) left for auto-scaling.
    config.function.vcpus = std::clamp(total_vcpus / 32.0, 0.5, 6.25);
    int max_deployments = static_cast<int>(
        total_vcpus / config.function.vcpus / 2.0);
    config.num_deployments = std::clamp(max_deployments, 2, 16);
    // Metadata working sets are long-lived; a short idle timeout would
    // churn caches during lulls without saving pay-per-use cost.
    config.function.idle_reclaim = sim::sec(120);
    // §5.2.2: 6-GB NameNodes at the paper's 6.25-vCPU size, scaled with
    // the instance (cost models bill GB-time).
    config.function.memory_gb = 6.0 * config.function.vcpus / 6.25;
    config.num_client_vms = num_vms;
    config.clients_per_vm = clients_per_vm;
    config.store = make_store_config(store_scale);
    return config;
}

hopsfs::HopsFsConfig
make_hops_config(const std::string& label, double total_vcpus, bool cache,
                 int num_vms, int clients_per_vm, double store_scale)
{
    hopsfs::HopsFsConfig config;
    config.label = label;
    // The paper's HopsFS NameNodes are 16-vCPU servers; smaller budgets
    // get fewer/thinner NameNodes so the total is honoured exactly.
    config.num_name_nodes =
        std::max(1, static_cast<int>(total_vcpus / 16.0));
    config.name_node.vcpus =
        total_vcpus / static_cast<double>(config.num_name_nodes);
    config.num_client_vms = num_vms;
    config.clients_per_vm = clients_per_vm;
    config.store = make_store_config(store_scale);
    if (cache) {
        config.cache_bytes_per_nn = 2ull * 1024 * 1024 * 1024;
    }
    return config;
}

infinicache::InfiniCacheConfig
make_infinicache_config(double total_vcpus, int num_vms, int clients_per_vm,
                        double store_scale)
{
    infinicache::InfiniCacheConfig config;
    config.total_vcpus = total_vcpus;
    config.num_functions = std::max(
        1, static_cast<int>(std::lround(total_vcpus / 6.25)));
    config.num_client_vms = num_vms;
    config.clients_per_vm = clients_per_vm;
    config.store = make_store_config(store_scale);
    return config;
}

cephfs::CephFsConfig
make_cephfs_config(int num_vms, int clients_per_vm)
{
    cephfs::CephFsConfig config;
    config.num_client_vms = num_vms;
    config.clients_per_vm = clients_per_vm;
    return config;
}

SystemInstance
make_system(const std::string& kind, double total_vcpus, int num_clients)
{
    SystemInstance instance;
    instance.sim = std::make_unique<sim::Simulation>();
    instance.observer = std::make_unique<ScopedRunObservation>(
        *instance.sim, kind + "/clients=" + std::to_string(num_clients));
    int num_vms = 8;
    int clients_per_vm = std::max(1, num_clients / num_vms);
    if (kind == "lambda-fs") {
        auto fs = std::make_unique<core::LambdaFs>(
            *instance.sim,
            make_lambda_config(total_vcpus, num_vms, clients_per_vm));
        instance.tree = build_bench_tree(fs->authoritative_tree());
        instance.dfs = std::move(fs);
    } else if (kind == "hopsfs" || kind == "hopsfs+cache") {
        auto fs = std::make_unique<hopsfs::HopsFs>(
            *instance.sim,
            make_hops_config(kind, total_vcpus, kind == "hopsfs+cache",
                             num_vms, clients_per_vm));
        instance.tree = build_bench_tree(fs->authoritative_tree());
        instance.dfs = std::move(fs);
    } else if (kind == "infinicache") {
        auto fs = std::make_unique<infinicache::InfiniCacheFs>(
            *instance.sim,
            make_infinicache_config(total_vcpus, num_vms, clients_per_vm));
        instance.tree = build_bench_tree(fs->authoritative_tree());
        instance.dfs = std::move(fs);
    } else if (kind == "cephfs") {
        auto fs = std::make_unique<cephfs::CephFs>(
            *instance.sim, make_cephfs_config(num_vms, clients_per_vm));
        instance.tree = build_bench_tree(fs->authoritative_tree());
        instance.dfs = std::move(fs);
    } else {
        std::fprintf(stderr, "unknown system kind: %s\n", kind.c_str());
        std::abort();
    }
    return instance;
}

std::vector<std::string>
microbench_systems()
{
    return {"lambda-fs", "hopsfs", "hopsfs+cache", "infinicache", "cephfs"};
}

std::vector<OpType>
microbench_ops()
{
    return {OpType::kReadFile, OpType::kLs, OpType::kStat,
            OpType::kCreateFile, OpType::kMkdir};
}

namespace {

/**
 * Report the slab bulk-load rate of a just-built bench tree. The key is
 * inodes_per_sec (not events_per_sec) so perf_smoke's event-rate floor
 * regex never matches a build line.
 */
void
report_tree_build(const ns::NamespaceTree& tree,
                  std::chrono::steady_clock::time_point t0)
{
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    size_t inodes = tree.inode_count();
    std::printf("  [perf] tree_build: inodes=%zu wall_s=%.3f "
                "inodes_per_sec=%.0f\n",
                inodes, wall,
                wall > 0.0 ? static_cast<double>(inodes) / wall : 0.0);
}

}  // namespace

ns::BuiltTree
build_bench_tree(ns::NamespaceTree& tree)
{
    ns::TreeSpec spec;
    spec.root = "/bench";
    spec.depth = 4;
    spec.fanout = 8;
    spec.files_per_dir = 2;  // 4681 dirs, ~9.4k files
    auto t0 = std::chrono::steady_clock::now();
    ns::BuiltTree out =
        ns::build_balanced_tree(tree, spec, ns::UserContext{}, 0);
    report_tree_build(tree, t0);
    return out;
}

ns::BuiltTree
build_scaled_tree(ns::NamespaceTree& tree, double s)
{
    ns::TreeSpec spec;
    spec.root = "/bench";
    spec.depth = 3;
    spec.fanout = 8;
    spec.files_per_dir = std::max(
        4, static_cast<int>(std::lround(48 * s)));
    auto t0 = std::chrono::steady_clock::now();
    ns::BuiltTree out =
        ns::build_balanced_tree(tree, spec, ns::UserContext{}, 0);
    report_tree_build(tree, t0);
    return out;
}

IndustrialRun
run_industrial(sim::Simulation& sim, workload::Dfs& dfs, ns::BuiltTree tree,
               workload::SpotifyConfig config, sim::SimTime warmup)
{
    IndustrialRun run;
    run.system = dfs.name();
    arm_observability(sim);
    sim.run_until(sim.now() + warmup);

    workload::SpotifyWorkload workload(sim, dfs, std::move(tree), config);
    sim::SimTime begin = sim.now();
    workload.start();

    // Per-second sampling of cost (native + simplified pricing).
    double prev_cost = dfs.cost_so_far();
    double prev_simplified = dfs.simplified_cost_so_far();
    sim::SimTime end = begin + config.duration;
    while (sim.now() < end) {
        sim.run_until(sim.now() + sim::sec(1));
        double cost = dfs.cost_so_far();
        double simplified = dfs.simplified_cost_so_far();
        run.cost_per_s.push_back(cost - prev_cost);
        run.simplified_cost_per_s.push_back(simplified - prev_simplified);
        prev_cost = cost;
        prev_simplified = simplified;
    }
    // Drain the backlog (a struggling system may finish late); cap the
    // drain so a hopeless configuration still terminates.
    sim::SimTime drain_deadline = sim.now() + config.duration * 2;
    while (!workload.finished() && sim.now() < drain_deadline) {
        if (!sim.step()) {
            break;
        }
    }

    const workload::SystemMetrics& metrics = dfs.metrics();
    run.metrics = &metrics;
    size_t seconds = static_cast<size_t>(config.duration / sim::sec(1));
    size_t first_bin = static_cast<size_t>(begin / sim::sec(1));
    for (size_t i = 0; i < seconds; ++i) {
        run.throughput.push_back(metrics.throughput().rate_at(first_bin + i));
        run.name_nodes.push_back(
            metrics.active_nodes().mean_at(first_bin + i));
        run.peak_throughput =
            std::max(run.peak_throughput, run.throughput.back());
    }
    run.completed = static_cast<int64_t>(metrics.completed());
    run.offered = workload.offered();
    // Average over the measured window only: a system that "fell behind"
    // and drained its backlog afterwards must not get credit for it.
    double window_total = 0.0;
    for (double v : run.throughput) {
        window_total += v;
    }
    run.avg_throughput = window_total / sim::to_sec(config.duration);
    run.avg_latency_ms = metrics.overall_latency().mean() / 1e3;
    run.read_latency_ms = metrics.read_latency().mean() / 1e3;
    run.write_latency_ms = metrics.write_latency().mean() / 1e3;
    run.total_cost = dfs.cost_so_far();
    run.total_simplified_cost = dfs.simplified_cost_so_far();
    run.ops_shed = static_cast<int64_t>(metrics.shed());
    run.ops_deadline_missed = static_cast<int64_t>(metrics.deadline_missed());
    run.degradation = dfs.degradation();
    print_degradation_summary(run);
    observe_run(sim, dfs.name());
    return run;
}

void
print_degradation_summary(const IndustrialRun& run, bool always)
{
    const workload::DegradationStats& d = run.degradation;
    uint64_t activity = static_cast<uint64_t>(run.ops_shed) +
                        static_cast<uint64_t>(run.ops_deadline_missed) +
                        d.gateway_shed + d.store_shed +
                        d.breaker_open_events + d.breaker_fast_failures +
                        d.retries_denied + d.deadline_giveups;
    if (activity == 0 && !always) {
        return;  // keep baseline output unchanged when control is off
    }
    int64_t admitted = run.offered - run.ops_shed;
    int64_t in_deadline = run.completed;
    std::printf("  [degradation] %s\n", run.system.c_str());
    std::printf("    offered=%lld admitted=%lld completed-in-deadline=%lld "
                "shed=%lld deadline-missed=%lld\n",
                static_cast<long long>(run.offered),
                static_cast<long long>(admitted),
                static_cast<long long>(in_deadline),
                static_cast<long long>(run.ops_shed),
                static_cast<long long>(run.ops_deadline_missed));
    std::printf("    gateway-shed=%llu store-shed=%llu breaker-opens=%llu "
                "breaker-fast-fail=%llu retries-denied=%llu "
                "deadline-giveups=%llu\n",
                static_cast<unsigned long long>(d.gateway_shed),
                static_cast<unsigned long long>(d.store_shed),
                static_cast<unsigned long long>(d.breaker_open_events),
                static_cast<unsigned long long>(d.breaker_fast_failures),
                static_cast<unsigned long long>(d.retries_denied),
                static_cast<unsigned long long>(d.deadline_giveups));
}

void
print_banner(const char* experiment, const char* title)
{
    std::printf("\n");
    std::printf("================================================================================\n");
    std::printf("%s — %s\n", experiment, title);
    std::printf("  scale=%.3g ops/client=%d (see EXPERIMENTS.md for the scaling rules)\n",
                scale(), ops_per_client());
    std::printf("================================================================================\n");
}

void
print_check(const char* claim, const std::string& measured)
{
    std::printf("  PAPER: %-58s | MEASURED: %s\n", claim, measured.c_str());
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

}  // namespace lfs::bench
