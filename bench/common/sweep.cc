#include "sweep.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "harness.h"
#include "src/util/hash.h"

namespace lfs::bench {

namespace {

/**
 * Pid stride between points in merged Chrome traces: each child offsets
 * its run pids by index * stride, so a point may observe up to this many
 * runs before its pid range would collide with the next point's.
 */
constexpr int kTracePidStride = 64;

/** Create (and leave behind) an empty temp file; returns its path. */
std::string
make_temp_file(const char* tag)
{
    const char* dir = std::getenv("TMPDIR");
    if (dir == nullptr || *dir == '\0') {
        dir = "/tmp";
    }
    std::string templ =
        std::string(dir) + "/lfs_sweep_" + tag + "_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    int fd = mkstemp(buf.data());
    if (fd < 0) {
        std::perror("sweep: mkstemp");
        std::exit(1);
    }
    close(fd);
    return std::string(buf.data());
}

/** Length-prefixed section framing for the child result blob. */
void
write_section(std::FILE* f, const std::string& s)
{
    std::fprintf(f, "%zu\n", s.size());
    if (!s.empty()) {
        std::fwrite(s.data(), 1, s.size(), f);
    }
    std::fputc('\n', f);
}

bool
read_section(std::FILE* f, std::string& out)
{
    size_t len = 0;
    if (std::fscanf(f, "%zu", &len) != 1 || std::fgetc(f) != '\n') {
        return false;
    }
    out.assign(len, '\0');
    if (len != 0 && std::fread(out.data(), 1, len, f) != len) {
        return false;
    }
    return std::fgetc(f) == '\n';
}

void
write_vector(std::FILE* f, const std::vector<std::string>& v)
{
    std::fprintf(f, "%zu\n", v.size());
    for (const std::string& s : v) {
        write_section(f, s);
    }
}

bool
read_vector(std::FILE* f, std::vector<std::string>& out)
{
    size_t n = 0;
    if (std::fscanf(f, "%zu", &n) != 1 || std::fgetc(f) != '\n') {
        return false;
    }
    out.resize(n);
    for (std::string& s : out) {
        if (!read_section(f, s)) {
            return false;
        }
    }
    return true;
}

/** Copy the whole of @p path to stdout (child output replay). */
void
replay_file(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        return;
    }
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        std::fwrite(buf, 1, n, stdout);
    }
    std::fclose(f);
}

}  // namespace

uint64_t
sweep_seed(std::string_view label)
{
    return fnv1a(label);
}

int
sweep_jobs()
{
    int fallback = static_cast<int>(std::thread::hardware_concurrency());
    if (fallback < 1) {
        fallback = 1;
    }
    int jobs = env_int("LFS_SWEEP_JOBS", fallback);
    return jobs < 1 ? 1 : jobs;
}

void
SweepRunner::add(std::string label, Body body)
{
    points_.push_back(Point{std::move(label), std::move(body)});
}

std::vector<std::string>
SweepRunner::run()
{
    const size_t n = points_.size();
    std::vector<std::string> payloads(n);
    const int jobs = sweep_jobs();
    if (jobs <= 1 || n <= 1) {
        // Legacy serial path: bodies run inline, in add() order,
        // printing straight to this process's stdout. Trace pids use the
        // same per-point stride as forked children so the --trace-out
        // artifact is byte-identical at any job count.
        for (size_t i = 0; i < n; ++i) {
            detail::sweep_point_begin(static_cast<int>(i) * kTracePidStride);
            payloads[i] = points_[i].body();
        }
        return payloads;
    }

    struct Slot {
        pid_t pid = -1;
        std::string out_path;   ///< captured stdout
        std::string blob_path;  ///< payload + observability fragments
    };
    std::vector<Slot> slots(n);

    auto spawn = [&](size_t i) {
        slots[i].out_path = make_temp_file("out");
        slots[i].blob_path = make_temp_file("blob");
        // Flush before forking so buffered parent output is not
        // duplicated into the child's captured stream.
        std::fflush(stdout);
        std::fflush(stderr);
        pid_t pid = fork();
        if (pid < 0) {
            std::perror("sweep: fork");
            std::exit(1);
        }
        if (pid != 0) {
            slots[i].pid = pid;
            return;
        }
        // --- child: one grid point, then _exit (no atexit writers) ---
        detail::sweep_child_begin(static_cast<int>(i) * kTracePidStride);
        if (std::freopen(slots[i].out_path.c_str(), "w", stdout) ==
            nullptr) {
            _exit(3);
        }
        std::string payload = points_[i].body();
        std::fflush(stdout);
        detail::HarnessFragments fragments = detail::take_fragments();
        std::FILE* f = std::fopen(slots[i].blob_path.c_str(), "w");
        if (f == nullptr) {
            _exit(3);
        }
        write_section(f, payload);
        write_vector(f, fragments.trace);
        write_vector(f, fragments.metrics);
        write_vector(f, fragments.bench_log);
        std::fclose(f);
        _exit(0);
    };

    // Window scheduler: keep up to `jobs` children in flight; completion
    // order is irrelevant because the merge below runs in add() order.
    size_t next = 0;
    size_t running = 0;
    bool failed = false;
    while (next < n && running < static_cast<size_t>(jobs)) {
        spawn(next++);
        ++running;
    }
    while (running > 0) {
        int status = 0;
        pid_t pid = waitpid(-1, &status, 0);
        if (pid < 0) {
            std::perror("sweep: waitpid");
            std::exit(1);
        }
        size_t idx = n;
        for (size_t i = 0; i < n; ++i) {
            if (slots[i].pid == pid) {
                idx = i;
                break;
            }
        }
        if (idx == n) {
            continue;  // not one of ours
        }
        --running;
        slots[idx].pid = -1;
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr, "sweep: point '%s' failed (status %d)\n",
                         points_[idx].label.c_str(), status);
            failed = true;
        }
        if (next < n && !failed) {
            spawn(next++);
            ++running;
        }
    }
    if (failed) {
        std::exit(1);
    }

    // Deterministic merge: replay stdout, absorb fragments, and collect
    // payloads strictly in grid order.
    for (size_t i = 0; i < n; ++i) {
        replay_file(slots[i].out_path);
        std::FILE* f = std::fopen(slots[i].blob_path.c_str(), "r");
        detail::HarnessFragments fragments;
        bool ok = f != nullptr && read_section(f, payloads[i]) &&
                  read_vector(f, fragments.trace) &&
                  read_vector(f, fragments.metrics) &&
                  read_vector(f, fragments.bench_log);
        if (f != nullptr) {
            std::fclose(f);
        }
        if (!ok) {
            std::fprintf(stderr, "sweep: point '%s' left a corrupt result\n",
                         points_[i].label.c_str());
            std::exit(1);
        }
        detail::absorb_fragments(std::move(fragments));
        std::remove(slots[i].out_path.c_str());
        std::remove(slots[i].blob_path.c_str());
    }
    std::fflush(stdout);
    return payloads;
}

}  // namespace lfs::bench
