/**
 * @file
 * Figure 9 — cumulative monetary cost of the 25k-base Spotify workload:
 * λFS under AWS Lambda pay-per-use pricing, λFS under the "simplified"
 * provisioned-time model, and HopsFS / HopsFS+Cache billed as 512-vCPU
 * VM clusters. The paper reports $0.35 (λFS) vs $2.50 (HopsFS), a 7.14x
 * reduction, with the simplified model roughly doubling λFS's cost.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "common/harness.h"

namespace lfs::bench {
namespace {

void
run_figure()
{
    double s = scale();
    int num_vms = 8;
    int clients_per_vm = std::max(1, static_cast<int>(1024 * s) / num_vms);
    double vcpus = 512.0 * s;
    workload::SpotifyConfig wcfg;
    wcfg.base_throughput = 25000.0 * s;
    wcfg.duration = sim::sec(env_int("LFS_DURATION", 240));
    wcfg.num_client_vms = num_vms;

    IndustrialRun lambda_run;
    {
        sim::Simulation sim;
        core::LambdaFsConfig config =
            make_lambda_config(vcpus / 2, num_vms, clients_per_vm, s);
        core::LambdaFs fs(sim, config);
        ns::BuiltTree tree = build_scaled_tree(fs.authoritative_tree(), s);
        lambda_run = run_industrial(sim, fs, std::move(tree), wcfg);
    }
    IndustrialRun hops_run;
    {
        sim::Simulation sim;
        hopsfs::HopsFs fs(sim, make_hops_config("hopsfs", vcpus, false,
                                                num_vms, clients_per_vm, s));
        ns::BuiltTree tree = build_scaled_tree(fs.authoritative_tree(), s);
        hops_run = run_industrial(sim, fs, std::move(tree), wcfg);
    }
    IndustrialRun cache_run;
    {
        sim::Simulation sim;
        hopsfs::HopsFs fs(sim,
                          make_hops_config("hopsfs+cache", vcpus, true,
                                           num_vms, clients_per_vm, s));
        ns::BuiltTree tree = build_scaled_tree(fs.authoritative_tree(), s);
        cache_run = run_industrial(sim, fs, std::move(tree), wcfg);
    }

    std::printf("\n  Cumulative cost (USD) during the workload:\n");
    std::printf("  %-6s %14s %18s %12s %14s\n", "t(s)", "lambda-fs",
                "lfs (simplified)", "hopsfs", "hopsfs+cache");
    double cum_l = 0;
    double cum_ls = 0;
    double cum_h = 0;
    double cum_hc = 0;
    for (size_t t = 0; t < lambda_run.cost_per_s.size(); ++t) {
        cum_l += lambda_run.cost_per_s[t];
        cum_ls += lambda_run.simplified_cost_per_s[t];
        cum_h += t < hops_run.cost_per_s.size() ? hops_run.cost_per_s[t] : 0;
        cum_hc +=
            t < cache_run.cost_per_s.size() ? cache_run.cost_per_s[t] : 0;
        if (t % 30 == 0 || t + 1 == lambda_run.cost_per_s.size()) {
            std::printf("  %-6zu %14.4f %18.4f %12.4f %14.4f\n", t, cum_l,
                        cum_ls, cum_h, cum_hc);
        }
    }

    std::printf("\n  Checks:\n");
    print_check("hopsfs ~7.1x more expensive than lambda-fs ($2.50 vs $0.35)",
                fmt(cum_h / cum_l) + "x");
    print_check("simplified model roughly doubles lambda-fs's cost",
                fmt(cum_ls / cum_l) + "x");
    print_check("hopsfs and hopsfs+cache cost the same (same VM cluster)",
                fmt(cum_hc / cum_h) + "x");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Figure 9",
                             "Cumulative cost of the 25k Spotify workload");
    lfs::bench::run_figure();
    return 0;
}
