/**
 * @file
 * Figure 12 — resource scaling: throughput of the five systems for read,
 * ls, stat, create, and mkdir as the metadata-service vCPU budget grows
 * 16 -> 512 with a fixed client population. λFS converts additional
 * vCPUs into additional serverless NameNodes; HopsFS's store-bound
 * architecture cannot use them; CephFS's MDS cluster does not scale out.
 */
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/harness.h"
#include "common/sweep.h"
#include "src/workload/microbench.h"

namespace lfs::bench {
namespace {

void
run_figure()
{
    const int clients = env_int("LFS_CLIENTS", 512);
    std::vector<double> budgets;
    for (double v = 16; v <= 512; v *= 2) {
        budgets.push_back(v);
    }
    // One sweep point per (op, system, vcpus) cell (see bench_fig11).
    struct Cell {
        OpType op;
        std::string system;
    };
    std::vector<Cell> cells;
    SweepRunner sweep;
    for (OpType op : microbench_ops()) {
        for (const std::string& system : microbench_systems()) {
            for (double vcpus : budgets) {
                std::string label = std::string("fig12/") + op_name(op) +
                                    "/" + system + "/vcpus=" +
                                    std::to_string(static_cast<int>(vcpus));
                cells.push_back(Cell{op, system});
                sweep.add(label, [=]() {
                    SystemInstance instance =
                        make_system(system, vcpus, clients);
                    workload::MicrobenchConfig mcfg;
                    mcfg.op = op;
                    mcfg.num_clients = clients;
                    mcfg.ops_per_client = ops_per_client();
                    mcfg.seed = sweep_seed(label);
                    workload::MicrobenchResult r = workload::run_microbench(
                        *instance.sim, *instance.dfs,
                        std::move(instance.tree), mcfg);
                    char buf[64];
                    std::snprintf(buf, sizeof(buf), "%.17g", r.ops_per_sec);
                    return std::string(buf);
                });
            }
        }
    }

    std::map<OpType, std::map<std::string, std::vector<double>>> results;
    std::vector<std::string> payloads = sweep.run();
    for (size_t i = 0; i < payloads.size(); ++i) {
        results[cells[i].op][cells[i].system].push_back(
            std::strtod(payloads[i].c_str(), nullptr));
    }

    for (OpType op : microbench_ops()) {
        std::printf("\n  %s throughput (ops/sec) vs vCPU budget:\n",
                    op_name(op));
        std::printf("  %-8s", "vcpus");
        for (const auto& system : microbench_systems()) {
            std::printf(" %15s", system.c_str());
        }
        std::printf("\n");
        for (size_t i = 0; i < budgets.size(); ++i) {
            std::printf("  %-8.0f", budgets[i]);
            for (const auto& system : microbench_systems()) {
                std::printf(" %15.0f", results[op][system][i]);
            }
            std::printf("\n");
        }
    }

    auto& read_lambda = results[OpType::kReadFile]["lambda-fs"];
    auto& read_hops = results[OpType::kReadFile]["hopsfs"];
    std::printf("\n  Checks:\n");
    print_check("lambda-fs read scales ~35x from 16 to 512 vCPUs",
                fmt(read_lambda.back() / read_lambda.front()) + "x");
    print_check("hopsfs read barely scales (store-bound)",
                fmt(read_hops.back() / read_hops.front()) + "x");
    print_check("lambda-fs read ~31x hopsfs at 512 vCPUs",
                fmt(read_lambda.back() / read_hops.back()) + "x");
    print_check("write scaling muted (store is the bottleneck)",
                fmt(results[OpType::kCreateFile]["lambda-fs"].back() /
                    results[OpType::kCreateFile]["lambda-fs"].front()) +
                    "x create scale-up for lambda-fs");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Figure 12",
                             "Resource scaling, 16-512 vCPUs, fixed clients");
    lfs::bench::run_figure();
    return 0;
}
