/**
 * @file
 * Ablation — randomized HTTP-TCP replacement probability (§3.4): sweeping
 * the probability that a TCP-eligible RPC is issued via HTTP instead.
 * 0 disables platform-visible load (no auto-scaling signal); the paper
 * finds <= 1% works best; large values pay the HTTP latency tax.
 */
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "src/workload/microbench.h"

namespace lfs::bench {
namespace {

void
run_ablation()
{
    const double vcpus = env_double("LFS_VCPUS", 512.0);
    const int clients = env_int("LFS_CLIENTS", 512);
    std::vector<double> probabilities{0.0, 0.001, 0.01, 0.05, 0.2};

    std::printf("\n  %-12s %14s %14s %14s %10s\n", "replace p", "ops/sec",
                "mean lat ms", "p99 lat ms", "peak NNs");
    double best = 0;
    double p0_tput = 0;
    for (double p : probabilities) {
        sim::Simulation sim;
        ScopedRunObservation obs(sim, "replace_p=" + fmt(p));
        core::LambdaFsConfig config = make_lambda_config(vcpus, 8,
                                                         clients / 8);
        config.client.http_replace_probability = p;
        core::LambdaFs fs(sim, config);
        ns::BuiltTree tree = build_bench_tree(fs.authoritative_tree());
        workload::MicrobenchConfig mcfg;
        mcfg.op = OpType::kReadFile;
        mcfg.num_clients = clients;
        // Warm with a fraction of the fleet: the measured load *growth*
        // is what the HTTP-TCP replacement signal must make visible to
        // the platform (with p=0, TCP-only traffic cannot scale out).
        mcfg.warmup_clients = clients / 8;
        mcfg.ops_per_client = ops_per_client();
        workload::MicrobenchResult r =
            workload::run_microbench(sim, fs, std::move(tree), mcfg);
        std::printf("  %-12.3f %14.0f %14.2f %14.2f %10d\n", p,
                    r.ops_per_sec, r.mean_latency_ms, r.p99_latency_ms,
                    fs.active_name_nodes());
        if (p == 0.0) {
            p0_tput = r.ops_per_sec;
        }
        best = std::max(best, r.ops_per_sec);
    }
    std::printf("\n  Checks:\n");
    print_check("p=0 (no scaling signal) clearly below the best setting",
                fmt(p0_tput / best, 3) + "x of best");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner(
        "Ablation", "HTTP-TCP replacement probability sweep (design §3.4)");
    lfs::bench::run_ablation();
    return 0;
}
