/**
 * @file
 * Figure 15 — fault tolerance: the 25k-base Spotify workload on λFS
 * while one active NameNode is terminated every 30 seconds, targeting
 * deployments round-robin. The paper's result: the workload still
 * completes (including the burst); throughput dips briefly after each
 * kill while blocked clients time out and resubmit, then recovers.
 */
#include <cstdio>
#include <memory>

#include "common/harness.h"
#include "src/workload/fault_injector.h"

namespace lfs::bench {
namespace {

void
run_figure()
{
    double s = scale();
    int num_vms = 8;
    int clients_per_vm = std::max(1, static_cast<int>(1024 * s) / num_vms);
    double vcpus = 512.0 * s;
    workload::SpotifyConfig wcfg;
    wcfg.base_throughput = 25000.0 * s;
    wcfg.duration = sim::sec(env_int("LFS_DURATION", 240));
    wcfg.num_client_vms = num_vms;

    auto run_once = [&](bool with_failures) {
        sim::Simulation sim;
        core::LambdaFsConfig config =
            make_lambda_config(vcpus, num_vms, clients_per_vm, s);
        core::LambdaFs fs(sim, config);
        ns::BuiltTree tree = build_scaled_tree(fs.authoritative_tree(), s);
        std::unique_ptr<workload::FaultInjector> injector;
        if (with_failures) {
            injector = std::make_unique<workload::FaultInjector>(
                sim, sim::sec(30), [&fs](int round) {
                    return fs.kill_name_node(
                        round % fs.platform().deployment_count());
                });
            injector->start(wcfg.duration + sim::sec(10));
        }
        IndustrialRun run = run_industrial(sim, fs, std::move(tree), wcfg);
        if (injector) {
            std::printf("  (injected %llu kills)\n",
                        static_cast<unsigned long long>(injector->kills()));
        }
        return run;
    };

    IndustrialRun failures = run_once(true);
    IndustrialRun clean = run_once(false);

    std::printf("\n  Throughput timeline (ops/sec), kills every 30 s:\n");
    std::printf("  %-6s %16s %16s %12s %12s\n", "t(s)", "lfs+failures",
                "lfs (clean)", "fail NNs", "clean NNs");
    for (size_t t = 0; t < failures.throughput.size(); t += 10) {
        std::printf("  %-6zu %16.0f %16.0f %12.1f %12.1f\n", t,
                    failures.throughput[t],
                    t < clean.throughput.size() ? clean.throughput[t] : 0,
                    failures.name_nodes[t],
                    t < clean.name_nodes.size() ? clean.name_nodes[t] : 0);
    }

    std::printf("\n  summary: with failures avg %.0f ops/s (%lld/%lld ops), "
                "clean avg %.0f ops/s\n",
                failures.avg_throughput,
                static_cast<long long>(failures.completed),
                static_cast<long long>(failures.offered),
                clean.avg_throughput);
    std::printf("\n  Checks:\n");
    print_check("workload completes despite a kill every 30s",
                fmt(100.0 * static_cast<double>(failures.completed) /
                        static_cast<double>(failures.offered), 1) +
                    "% of offered ops completed");
    print_check("average throughput close to the failure-free run",
                fmt(failures.avg_throughput / clean.avg_throughput, 3) +
                    "x of clean");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Figure 15",
                             "Fault tolerance under the Spotify workload");
    lfs::bench::run_figure();
    return 0;
}
