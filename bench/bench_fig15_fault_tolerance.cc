/**
 * @file
 * Figure 15 — fault tolerance: the 25k-base Spotify workload on λFS
 * while faults are injected from a deterministic sim::FaultPlan. The
 * default scenario matches the paper: one active NameNode terminated
 * every 30 seconds, targeting deployments round-robin. The workload
 * still completes (including the burst); throughput dips briefly after
 * each kill while blocked clients time out and resubmit, then recovers.
 *
 * LFS_SCENARIO selects the fault mix:
 *   kills        (default) NameNode kill every 30 s (the paper's Fig. 15)
 *   message-loss 2% request + 2% reply loss on client RPC channels
 *   partition    deployment 0 unreachable for 5 s mid-run
 *   crash        1% per-invocation instance crash + invoker stalls
 *   store-outage one store shard down for 5 s mid-run
 *   combined     kills + message-loss + crash together
 */
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/harness.h"
#include "src/sim/fault.h"

namespace lfs::bench {
namespace {

/** Configure @p plan for @p scenario; returns true if kills are active. */
bool
apply_scenario(sim::FaultPlan& plan, const std::string& scenario,
               core::LambdaFs& fs, sim::SimTime duration)
{
    bool kills = false;
    auto add_kills = [&] {
        kills = true;
        plan.add_kill_schedule(sim::sec(30), duration + sim::sec(10),
                               [&fs](int round) {
                                   return fs.kill_name_node(
                                       round %
                                       fs.platform().deployment_count());
                               });
    };
    auto add_message_loss = [&] {
        sim::MessageFaultWindow w;
        w.from = sim::sec(10);
        w.until = duration;
        w.channels = sim::channel_bit(sim::FaultChannel::kClientRpc) |
                     sim::channel_bit(sim::FaultChannel::kGateway);
        w.drop_request_p = 0.02;
        w.drop_reply_p = 0.02;
        w.duplicate_p = 0.01;
        plan.add_message_faults(w);
    };
    auto add_crash = [&] {
        sim::InstanceFaultWindow w;
        w.from = sim::sec(10);
        w.until = duration;
        w.crash_p = 0.0005;
        w.stall_p = 0.002;
        plan.add_instance_faults(w);
    };
    if (scenario == "kills") {
        add_kills();
    } else if (scenario == "message-loss") {
        add_message_loss();
    } else if (scenario == "partition") {
        sim::PartitionWindow w;
        w.from = duration / 2;
        w.until = duration / 2 + sim::sec(5);
        w.groups = {0};
        plan.add_partition(w);
    } else if (scenario == "crash") {
        add_crash();
    } else if (scenario == "store-outage") {
        sim::StoreOutageWindow w;
        w.shard = 0;
        w.from = duration / 2;
        w.until = duration / 2 + sim::sec(5);
        plan.add_store_outage(w);
    } else if (scenario == "combined") {
        add_kills();
        add_message_loss();
        add_crash();
    } else {
        std::printf("  unknown LFS_SCENARIO '%s', defaulting to kills\n",
                    scenario.c_str());
        add_kills();
    }
    return kills;
}

void
print_fault_summary(const sim::FaultPlan& plan)
{
    std::printf(
        "  (injected: %llu kills, %llu msg drops, %llu dups, "
        "%llu delays, %llu partition drops, %llu crashes, %llu stalls, "
        "%llu store-stalled ops)\n",
        static_cast<unsigned long long>(plan.kills()),
        static_cast<unsigned long long>(plan.messages_dropped()),
        static_cast<unsigned long long>(plan.messages_duplicated()),
        static_cast<unsigned long long>(plan.messages_delayed()),
        static_cast<unsigned long long>(plan.partition_drops()),
        static_cast<unsigned long long>(plan.instance_crashes()),
        static_cast<unsigned long long>(plan.instance_stalls()),
        static_cast<unsigned long long>(plan.store_stalled_ops()));
}

void
run_figure()
{
    double s = scale();
    int num_vms = 8;
    int clients_per_vm = std::max(1, static_cast<int>(1024 * s) / num_vms);
    double vcpus = 512.0 * s;
    const char* scenario_env = std::getenv("LFS_SCENARIO");
    std::string scenario = scenario_env ? scenario_env : "kills";
    workload::SpotifyConfig wcfg;
    wcfg.base_throughput = 25000.0 * s;
    wcfg.duration = sim::sec(env_int("LFS_DURATION", 240));
    wcfg.num_client_vms = num_vms;

    auto run_once = [&](bool with_failures) {
        sim::Simulation sim;
        core::LambdaFsConfig config =
            make_lambda_config(vcpus, num_vms, clients_per_vm, s);
        core::LambdaFs fs(sim, config);
        ns::BuiltTree tree = build_scaled_tree(fs.authoritative_tree(), s);
        std::unique_ptr<sim::FaultPlan> plan;
        if (with_failures) {
            plan = std::make_unique<sim::FaultPlan>(sim, config.seed);
            apply_scenario(*plan, scenario, fs, wcfg.duration);
        }
        IndustrialRun run = run_industrial(sim, fs, std::move(tree), wcfg);
        if (plan) {
            print_fault_summary(*plan);
        }
        return run;
    };

    std::printf("  scenario: %s\n", scenario.c_str());
    IndustrialRun failures = run_once(true);
    IndustrialRun clean = run_once(false);

    std::printf("\n  Throughput timeline (ops/sec), scenario '%s':\n",
                scenario.c_str());
    std::printf("  %-6s %16s %16s %12s %12s\n", "t(s)", "lfs+failures",
                "lfs (clean)", "fail NNs", "clean NNs");
    for (size_t t = 0; t < failures.throughput.size(); t += 10) {
        std::printf("  %-6zu %16.0f %16.0f %12.1f %12.1f\n", t,
                    failures.throughput[t],
                    t < clean.throughput.size() ? clean.throughput[t] : 0,
                    failures.name_nodes[t],
                    t < clean.name_nodes.size() ? clean.name_nodes[t] : 0);
    }

    std::printf("\n  summary: with failures avg %.0f ops/s (%lld/%lld ops), "
                "clean avg %.0f ops/s\n",
                failures.avg_throughput,
                static_cast<long long>(failures.completed),
                static_cast<long long>(failures.offered),
                clean.avg_throughput);
    std::printf("\n  Checks:\n");
    print_check("workload completes despite injected faults",
                fmt(100.0 * static_cast<double>(failures.completed) /
                        static_cast<double>(failures.offered), 1) +
                    "% of offered ops completed");
    print_check("average throughput close to the failure-free run",
                fmt(failures.avg_throughput / clean.avg_throughput, 3) +
                    "x of clean");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Figure 15",
                             "Fault tolerance under the Spotify workload");
    lfs::bench::run_figure();
    return 0;
}
