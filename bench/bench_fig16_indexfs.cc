/**
 * @file
 * Figure 16 — λIndexFS vs IndexFS on the tree-test benchmark: per-client
 * write (mknod) then read (getattr) phases, for 2..256 clients, in both
 * the fixed-size (total op budget split across clients) and
 * variable-size (fixed ops per client) variants. Op counts are scaled
 * from the paper's 1M/10k via LFS_TT_* (see EXPERIMENTS.md).
 */
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "common/harness.h"
#include "src/workload/tree_test.h"

namespace lfs::bench {
namespace {

workload::TreeTestResult
run_one(const std::string& system, workload::TreeTestConfig tcfg)
{
    sim::Simulation sim;
    ScopedRunObservation obs(sim, system);
    if (system == "indexfs") {
        indexfs::IndexFsConfig config;
        config.clients_per_vm =
            std::max(1, (tcfg.num_clients + config.num_client_vms - 1) /
                            config.num_client_vms);
        indexfs::IndexFs fs(sim, config);
        return workload::run_tree_test(
            sim, fs, tcfg, [&fs](const std::string& dir) {
                fs.preload(dir, ns::INodeType::kDirectory);
            });
    }
    indexfs::LambdaIndexFsConfig config;
    config.clients_per_vm =
        std::max(1, (tcfg.num_clients + config.num_client_vms - 1) /
                        config.num_client_vms);
    indexfs::LambdaIndexFs fs(sim, config);
    return workload::run_tree_test(
        sim, fs, tcfg, [&fs](const std::string& dir) {
            fs.preload(dir, ns::INodeType::kDirectory);
        });
}

void
run_variant(bool fixed)
{
    int64_t fixed_total = env_int("LFS_TT_FIXED_TOTAL", 100000);
    int64_t per_client = env_int("LFS_TT_PER_CLIENT", 1000);

    std::printf("\n--- %s workload (%s) ---\n",
                fixed ? "fixed-sized" : "variable-sized",
                fixed ? "total op budget split across clients"
                      : "constant ops per client");
    std::printf("  %-8s | %12s %12s %12s | %12s %12s %12s\n", "clients",
                "lIdx write", "lIdx read", "lIdx agg", "Idx write",
                "Idx read", "Idx agg");

    double lambda_read_last = 0;
    double index_read_last = 0;
    double lambda_write_last = 0;
    double index_write_last = 0;
    for (int clients = 2; clients <= 256; clients *= 2) {
        workload::TreeTestConfig tcfg;
        tcfg.num_clients = clients;
        if (fixed) {
            tcfg.fixed_total_ops = fixed_total;
        } else {
            tcfg.ops_per_client = per_client;
        }
        workload::TreeTestResult lambda = run_one("lambda-indexfs", tcfg);
        workload::TreeTestResult index = run_one("indexfs", tcfg);
        std::printf("  %-8d | %12.0f %12.0f %12.0f | %12.0f %12.0f %12.0f\n",
                    clients, lambda.write_ops_per_sec,
                    lambda.read_ops_per_sec, lambda.agg_ops_per_sec,
                    index.write_ops_per_sec, index.read_ops_per_sec,
                    index.agg_ops_per_sec);
        lambda_read_last = lambda.read_ops_per_sec;
        index_read_last = index.read_ops_per_sec;
        lambda_write_last = lambda.write_ops_per_sec;
        index_write_last = index.write_ops_per_sec;
    }
    std::printf("\n  Checks (%s, 256 clients):\n",
                fixed ? "fixed" : "variable");
    print_check("lambda-indexfs read throughput consistently higher",
                fmt(lambda_read_last / index_read_last) + "x indexfs");
    print_check("lambda-indexfs write throughput significantly higher",
                fmt(lambda_write_last / index_write_last) + "x indexfs");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Figure 16",
                             "lambda-indexfs vs indexfs (tree-test on BeeGFS)");
    lfs::bench::run_variant(/*fixed=*/true);
    lfs::bench::run_variant(/*fixed=*/false);
    return 0;
}
