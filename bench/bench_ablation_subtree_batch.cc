/**
 * @file
 * Ablation — subtree batching (Appendix D): latency of a subtree mv on a
 * 2^16-file directory as the sub-operation batch size sweeps 64 -> 2048.
 * The paper: "larger batch sizes tend to perform better" (defaults 512).
 */
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "src/namespace/tree_builder.h"

namespace lfs::bench {
namespace {

sim::Task<void>
co_execute_timed(sim::Simulation& sim, workload::DfsClient& client, Op op,
                 OpResult& out, sim::SimTime& done_at)
{
    out = co_await client.execute(std::move(op));
    done_at = sim.now();
}

void
run_ablation()
{
    const int64_t files = 1 << env_int("LFS_SUBTREE_LOG2", 16);
    std::vector<int> batches{64, 128, 256, 512, 1024, 2048};

    std::printf("\n  subtree mv of a %lld-file directory:\n",
                static_cast<long long>(files));
    std::printf("  %-12s %16s\n", "batch size", "latency (ms)");
    for (int batch : batches) {
        sim::Simulation sim;
        ScopedRunObservation obs(sim, "batch=" + std::to_string(batch));
        core::LambdaFsConfig config = make_lambda_config(512.0, 8, 2);
        config.store.subtree_batch_size = batch;
        core::LambdaFs fs(sim, config);
        ns::UserContext root;
        ns::build_flat_directory(fs.authoritative_tree(), "/subtree", files,
                                 root, 0);
        fs.authoritative_tree().mkdirs("/moved", root, 0);
        sim.run_until(sim::sec(5));
        Op op;
        op.type = OpType::kSubtreeMv;
        op.path = "/subtree";
        op.dst = "/moved/subtree";
        OpResult result;
        sim::SimTime begin = sim.now();
        sim::SimTime done_at = -1;
        sim::spawn(co_execute_timed(sim, fs.client(0), std::move(op), result,
                                    done_at));
        while (done_at < 0 && sim.step()) {
        }
        std::printf("  %-12d %16.1f%s\n", batch,
                    sim::to_msec(done_at - begin),
                    result.status.ok() ? "" : "  (FAILED)");
    }
    std::printf("\n  (larger batches amortize per-transaction overhead; "
                "Appendix D)\n");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Ablation",
                             "Subtree sub-operation batch size (Appendix D)");
    lfs::bench::run_ablation();
    return 0;
}
