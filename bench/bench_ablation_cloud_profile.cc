/**
 * @file
 * Ablation — cloud-profile robustness (§5.1, §A.8: "results were
 * verified to be consistent with results obtained on GCP"): the 25k
 * industrial workload runs under an AWS-like and a GCP-like latency
 * profile; the λFS-vs-HopsFS relationships must hold under both.
 */
#include <cstdio>
#include <memory>

#include "common/harness.h"

namespace lfs::bench {
namespace {

/** A GCP-flavoured latency profile: slightly different band shapes. */
net::NetworkConfig
gcp_profile()
{
    net::NetworkConfig config;
    config.local = {sim::usec(8), sim::usec(30)};
    config.tcp = {sim::usec(250), sim::usec(600)};
    config.http = {sim::usec(3000), sim::usec(11000)};
    config.store = {sim::usec(180), sim::usec(420)};
    config.coord = {sim::usec(180), sim::usec(450)};
    return config;
}

struct ProfileResult {
    double lambda_avg = 0;
    double hops_avg = 0;
    double lambda_read_ms = 0;
    double hops_read_ms = 0;
};

ProfileResult
run_profile(const char* label, const net::NetworkConfig& network)
{
    double s = scale();
    int num_vms = 8;
    int clients_per_vm = std::max(1, static_cast<int>(1024 * s) / num_vms);
    double vcpus = 512.0 * s;
    workload::SpotifyConfig wcfg;
    wcfg.base_throughput = 25000.0 * s;
    wcfg.duration = sim::sec(env_int("LFS_DURATION", 120));
    wcfg.num_client_vms = num_vms;

    ProfileResult result;
    {
        sim::Simulation sim;
        core::LambdaFsConfig config =
            make_lambda_config(vcpus, num_vms, clients_per_vm, s);
        config.network = network;
        core::LambdaFs fs(sim, config);
        ns::BuiltTree tree = build_scaled_tree(fs.authoritative_tree(), s);
        IndustrialRun run = run_industrial(sim, fs, std::move(tree), wcfg);
        result.lambda_avg = run.avg_throughput;
        result.lambda_read_ms = run.read_latency_ms;
    }
    {
        sim::Simulation sim;
        hopsfs::HopsFsConfig config = make_hops_config(
            "hopsfs", vcpus, false, num_vms, clients_per_vm, s);
        config.network = network;
        hopsfs::HopsFs fs(sim, config);
        ns::BuiltTree tree = build_scaled_tree(fs.authoritative_tree(), s);
        IndustrialRun run = run_industrial(sim, fs, std::move(tree), wcfg);
        result.hops_avg = run.avg_throughput;
        result.hops_read_ms = run.read_latency_ms;
    }
    std::printf("  %-10s lambda-fs %8.0f ops/s %6.2f ms read | hopsfs "
                "%8.0f ops/s %6.2f ms read | tput ratio %.2fx, "
                "read-latency ratio %.1fx\n",
                label, result.lambda_avg, result.lambda_read_ms,
                result.hops_avg, result.hops_read_ms,
                result.lambda_avg / result.hops_avg,
                result.hops_read_ms / result.lambda_read_ms);
    return result;
}

void
run_ablation()
{
    std::printf("\n  25k industrial workload under two cloud latency "
                "profiles:\n\n");
    ProfileResult aws = run_profile("aws-like", net::NetworkConfig{});
    ProfileResult gcp = run_profile("gcp-like", gcp_profile());

    double aws_ratio = aws.lambda_avg / aws.hops_avg;
    double gcp_ratio = gcp.lambda_avg / gcp.hops_avg;
    std::printf("\n  Checks:\n");
    print_check("lambda-fs beats hopsfs on both clouds",
                fmt(aws_ratio) + "x (aws) / " + fmt(gcp_ratio) + "x (gcp)");
    print_check("the relationship is profile-stable (within ~30%)",
                fmt(gcp_ratio / aws_ratio, 3) + "x relative drift");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner(
        "Ablation", "Cloud-profile robustness (AWS-like vs GCP-like, §A.8)");
    lfs::bench::run_ablation();
    return 0;
}
