/**
 * @file
 * Ablation — per-instance ConcurrencyLevel (Figure 6's coarse-grained
 * scaling knob): small values force wide scale-out (more, lighter
 * NameNodes); large values concentrate requests on few instances.
 */
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "src/workload/microbench.h"

namespace lfs::bench {
namespace {

void
run_ablation()
{
    const double vcpus = env_double("LFS_VCPUS", 512.0);
    const int clients = env_int("LFS_CLIENTS", 512);
    std::vector<int> levels{1, 2, 4, 8, 16};

    std::printf("\n  %-14s %14s %14s %12s %12s\n", "concurrency", "ops/sec",
                "mean lat ms", "peak NNs", "cold starts");
    for (int level : levels) {
        sim::Simulation sim;
        ScopedRunObservation obs(sim,
                                 "concurrency=" + std::to_string(level));
        core::LambdaFsConfig config = make_lambda_config(vcpus, 8,
                                                         clients / 8);
        config.function.concurrency_level = level;
        core::LambdaFs fs(sim, config);
        ns::BuiltTree tree = build_bench_tree(fs.authoritative_tree());
        workload::MicrobenchConfig mcfg;
        mcfg.op = OpType::kReadFile;
        mcfg.num_clients = clients;
        mcfg.ops_per_client = ops_per_client();
        workload::MicrobenchResult r =
            workload::run_microbench(sim, fs, std::move(tree), mcfg);
        std::printf("  %-14d %14.0f %14.2f %12d %12llu\n", level,
                    r.ops_per_sec, r.mean_latency_ms, fs.active_name_nodes(),
                    static_cast<unsigned long long>(
                        fs.platform().total_cold_starts()));
    }
    std::printf("\n  (lower ConcurrencyLevel => greater degree of "
                "auto-scaling, per §3.4)\n");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Ablation",
                             "Function ConcurrencyLevel sweep (Figure 6)");
    lfs::bench::run_ablation();
    return 0;
}
