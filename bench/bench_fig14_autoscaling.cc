/**
 * @file
 * Figure 14 — the auto-scaling ablation: λFS throughput per operation
 * with intra-deployment auto-scaling enabled (unbounded), limited (at
 * most 3 instances per deployment), and disabled (1 instance per
 * deployment).
 */
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/harness.h"
#include "src/core/lambda_fs.h"
#include "src/workload/microbench.h"

namespace lfs::bench {
namespace {

void
run_figure()
{
    const double vcpus = env_double("LFS_VCPUS", 512.0);
    const int clients = env_int("LFS_CLIENTS", 1024);
    struct Mode {
        const char* label;
        int max_instances;  // 0 = unlimited
    };
    std::vector<Mode> modes{{"auto-scaling", 0},
                            {"limited (<=3)", 3},
                            {"disabled (1)", 1}};
    std::map<OpType, std::vector<double>> results;

    for (OpType op : microbench_ops()) {
        for (const Mode& mode : modes) {
            sim::Simulation sim;
            ScopedRunObservation obs(sim, std::string("autoscale/") +
                                              op_name(op) + "/" + mode.label);
            core::LambdaFsConfig config =
                make_lambda_config(vcpus, 8, clients / 8);
            core::LambdaFs fs(sim, config);
            fs.set_max_instances_per_deployment(mode.max_instances);
            ns::BuiltTree tree = build_bench_tree(fs.authoritative_tree());
            workload::MicrobenchConfig mcfg;
            mcfg.op = op;
            mcfg.num_clients = clients;
            // The ablation needs steady-state caches in every mode so the
            // comparison isolates *scaling*, not warm-up (EXPERIMENTS.md
            // note 8).
            mcfg.ops_per_client = std::max(256, ops_per_client());
            mcfg.seed = 4000 + static_cast<uint64_t>(mode.max_instances);
            workload::MicrobenchResult r = workload::run_microbench(
                sim, fs, std::move(tree), mcfg);
            results[op].push_back(r.ops_per_sec);
        }
    }

    std::printf("\n  %-10s", "op");
    for (const Mode& mode : modes) {
        std::printf(" %16s", mode.label);
    }
    std::printf(" %12s %12s\n", "AS/limited", "AS/disabled");
    for (OpType op : microbench_ops()) {
        const auto& row = results[op];
        std::printf("  %-10s %16.0f %16.0f %16.0f %11.2fx %11.2fx\n",
                    op_name(op), row[0], row[1], row[2],
                    row[1] > 0 ? row[0] / row[1] : 0.0,
                    row[2] > 0 ? row[0] / row[2] : 0.0);
    }

    std::printf("\n  Checks:\n");
    print_check("read: 2.85-3.17x over limited, 3.53-3.80x over disabled",
                fmt(results[OpType::kReadFile][0] /
                    results[OpType::kReadFile][1]) + "x / " +
                    fmt(results[OpType::kReadFile][0] /
                        results[OpType::kReadFile][2]) + "x");
    print_check("ls: 3.07x over limited, 14.37x over disabled",
                fmt(results[OpType::kLs][0] / results[OpType::kLs][1]) +
                    "x / " +
                    fmt(results[OpType::kLs][0] / results[OpType::kLs][2]) +
                    "x");
    print_check("write ops far less sensitive (store-bound)",
                fmt(results[OpType::kCreateFile][0] /
                    results[OpType::kCreateFile][2]) + "x for create");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Figure 14", "Auto-scaling ablation for lambda-fs");
    lfs::bench::run_figure();
    return 0;
}
