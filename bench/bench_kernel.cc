/**
 * @file
 * Event-kernel microbenchmark: measures raw simulator dispatch throughput
 * (events/sec of wall-clock time) for the scheduling patterns every λFS
 * experiment is built from. This is the binary the perf-smoke gate runs —
 * it prints machine-readable `events_per_sec` lines per case.
 *
 * Cases:
 *   callback_churn   schedule+dispatch of small lambda events, mixed delays
 *   same_time_fifo   bursts of same-timestamp events (seq tie-break path)
 *   coroutine_ping   processes co_awaiting delay() in a loop (handle path)
 *   semaphore_chain  contended Semaphore FIFO hand-off between processes
 *   tracing_overhead disabled-tracer start_span vs no call at all; asserts
 *                    the disabled path costs <5% (one branch, §ISSUE-5)
 *   attribution      end-to-end λFS stat microbench with the attribution
 *                    stack (ledger, histograms, flight recorder) armed
 *                    vs off; asserts enabled costs <5% (DESIGN.md §11)
 *
 * Measurement: best-of-LFS_KERNEL_REPS (default 5) wall time per case over
 * LFS_KERNEL_EVENTS events (default 2M); best-of damps scheduler noise.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/harness.h"
#include "src/core/lambda_fs.h"
#include "src/namespace/tree_builder.h"
#include "src/sim/latency.h"
#include "src/sim/primitives.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"
#include "src/workload/microbench.h"

namespace lfs::bench {
namespace {

using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

int
total_events()
{
    return env_int("LFS_KERNEL_EVENTS", 2'000'000);
}

int
reps()
{
    return env_int("LFS_KERNEL_REPS", 5);
}

/** LFS_KERNEL_CASES: comma-separated case filter (empty = all). */
bool
case_enabled(const char* name)
{
    const char* filter = std::getenv("LFS_KERNEL_CASES");
    if (filter == nullptr || *filter == '\0') {
        return true;
    }
    std::string padded = ",";
    padded += filter;
    padded += ',';
    std::string needle = ",";
    needle += name;
    needle += ',';
    return padded.find(needle) != std::string::npos;
}

/** Run @p body reps() times; report the best run's events/sec. */
template <typename Body>
double
measure_case(const char* name, Body&& body)
{
    if (!case_enabled(name)) {
        return 0.0;
    }
    double best_wall = 1e300;
    uint64_t events = 0;
    for (int r = 0; r < reps(); ++r) {
        Clock::time_point t0 = Clock::now();
        events = body();
        double wall = seconds_since(t0);
        if (wall < best_wall) {
            best_wall = wall;
        }
    }
    double eps = static_cast<double>(events) / best_wall;
    std::printf("[bench_kernel] case=%s events=%llu wall_s=%.4f "
                "events_per_sec=%.0f\n",
                name, static_cast<unsigned long long>(events), best_wall,
                eps);
    bench_log_entry(name, events, best_wall, eps);
    return eps;
}

/** Shared state for the churn functor below. */
struct ChurnCtx {
    sim::Simulation* sim;
    int scheduled = 0;
    int budget = 0;
};

/**
 * Self-rescheduling 24-byte functor with an inline xorshift delay stream —
 * the shape of a production call site (a fresh small lambda per schedule,
 * larger than std::function's 16-byte SBO, so the pre-pool kernel paid one
 * heap allocation per event).
 */
struct ChurnFire {
    ChurnCtx* ctx;
    uint64_t rng;

    void
    operator()()
    {
        if (ctx->scheduled < ctx->budget) {
            ++ctx->scheduled;
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            ctx->sim->schedule(sim::usec(static_cast<int64_t>(rng & 15)),
                               ChurnFire{ctx, rng});
        }
    }
};

/** 4096 in-flight self-rescheduling events with small mixed delays. */
uint64_t
run_callback_churn()
{
    sim::Simulation sim;
    ChurnCtx ctx{&sim, 0, total_events()};
    sim.reserve_events(4096);
    for (int i = 0; i < 4096 && ctx.scheduled < ctx.budget; ++i) {
        ++ctx.scheduled;
        sim.schedule(sim::usec(i & 15),
                     ChurnFire{&ctx, 0x9E3779B97F4A7C15ull + uint64_t(i)});
    }
    sim.run();
    return sim.events_executed();
}

/** Bursts of events at one instant: exercises the seq FIFO tie-break. */
uint64_t
run_same_time_fifo()
{
    sim::Simulation sim;
    const int budget = total_events();
    const int burst = 256;
    int scheduled = 0;
    std::function<void()> pump = [&] {
        for (int i = 0; i < burst && scheduled < budget; ++i) {
            ++scheduled;
            sim.schedule(0, [] {});
        }
        if (scheduled < budget) {
            ++scheduled;
            sim.schedule(sim::usec(1), pump);
        }
    };
    pump();
    sim.run();
    return sim.events_executed();
}

sim::Task<void>
co_ping(sim::Simulation& sim, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await sim::delay(sim, sim::usec(1));
    }
}

/** Coroutine resume path: delay() awaits are the dominant sim event. */
uint64_t
run_coroutine_ping()
{
    sim::Simulation sim;
    const int procs = 64;
    const int rounds = total_events() / procs;
    for (int p = 0; p < procs; ++p) {
        sim::spawn(co_ping(sim, rounds));
    }
    sim.run();
    return sim.events_executed();
}

sim::Task<void>
co_chain(sim::Simulation& sim, sim::Semaphore& sem, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await sem.acquire();
        co_await sim::delay(sim, sim::usec(1));
        sem.release();
    }
}

/** Contended semaphore: wake-ups flow through the kernel queue. */
uint64_t
run_semaphore_chain()
{
    sim::Simulation sim;
    sim::Semaphore sem(sim, 4);
    const int procs = 32;
    const int rounds = total_events() / (3 * procs);
    for (int p = 0; p < procs; ++p) {
        sim::spawn(co_chain(sim, sem, rounds));
    }
    sim.run();
    return sim.events_executed();
}

/**
 * Satellite: disabled-path overhead audit. The event hot path may touch
 * Tracer/MetricsRegistry only behind a single predictable branch, so a
 * run that *calls* start_span on a disabled tracer must be within 5% of a
 * run whose loop body omits the call entirely (the compiled-out shape).
 */
bool
run_tracing_overhead_audit()
{
    const int budget = total_events();

    auto run_with_tracing_call = [&]() -> uint64_t {
        sim::Simulation sim;
        // Tracing stays disabled: start_span must be one branch + return.
        int scheduled = 0;
        std::function<void()> fire = [&] {
            sim::Span s = sim.tracer().start_trace("bench", "noop");
            if (scheduled < budget) {
                ++scheduled;
                sim.schedule(sim::usec(1), fire);
            }
        };
        for (int i = 0; i < 32 && scheduled < budget; ++i) {
            ++scheduled;
            sim.schedule(sim::usec(i), fire);
        }
        sim.run();
        return sim.events_executed();
    };
    auto run_compiled_out = [&]() -> uint64_t {
        sim::Simulation sim;
        int scheduled = 0;
        std::function<void()> fire = [&] {
            if (scheduled < budget) {
                ++scheduled;
                sim.schedule(sim::usec(1), fire);
            }
        };
        for (int i = 0; i < 32 && scheduled < budget; ++i) {
            ++scheduled;
            sim.schedule(sim::usec(i), fire);
        }
        sim.run();
        return sim.events_executed();
    };

    if (!case_enabled("tracing_off")) {
        return true;
    }
    // Interleave A/B reps so machine-load drift hits both variants
    // equally; best-of per variant damps the remaining jitter. A batch
    // that still lands over budget gets one fresh batch — shared-host
    // steal bursts clear between batches, a real regression does not.
    double best_with = 1e300;
    double best_without = 1e300;
    uint64_t events = 0;
    auto measure_batch = [&]() -> double {
        for (int r = 0; r < reps(); ++r) {
            Clock::time_point t0 = Clock::now();
            events = run_with_tracing_call();
            best_with = std::min(best_with, seconds_since(t0));
            t0 = Clock::now();
            events = run_compiled_out();
            best_without = std::min(best_without, seconds_since(t0));
        }
        return (best_with - best_without) / best_without;
    };
    if (measure_batch() > 0.05) {
        std::printf("[bench_kernel] tracing delta over budget; re-measuring "
                    "once to reject machine noise\n");
        measure_batch();
    }
    double with_call = static_cast<double>(events) / best_with;
    double without = static_cast<double>(events) / best_without;
    std::printf("[bench_kernel] case=tracing_off events=%llu wall_s=%.4f "
                "events_per_sec=%.0f\n",
                static_cast<unsigned long long>(events), best_with,
                with_call);
    std::printf("[bench_kernel] case=tracing_compiled_out events=%llu "
                "wall_s=%.4f events_per_sec=%.0f\n",
                static_cast<unsigned long long>(events), best_without,
                without);
    double delta = (without - with_call) / without;
    std::printf("[bench_kernel] case=tracing_delta delta_pct=%.2f "
                "(limit 5.00)\n",
                delta * 100.0);
    if (delta > 0.05) {
        std::fprintf(stderr,
                     "FAIL: disabled tracing costs %.2f%% (>5%%) on the "
                     "event hot path\n",
                     delta * 100.0);
        return false;
    }
    return true;
}

/**
 * Satellite: attribution overhead audit. Runs the same closed-loop λFS
 * stat microbenchmark with the attribution stack that --attribution
 * arms (ledger stamping at every site, per-op histogram recording,
 * worst-k flight recorder) and with it off, and compares wall-clock
 * events/sec. Enabled must run within 5% of disabled — the ledger is a
 * fixed array with no allocation, every stamp is guarded by one bool
 * check, and the recorder rejects non-tail ops against the k-th worst
 * before copying anything. (Exemplar span capture is priced under
 * tracing, not here: it only happens when --trace-out arms the tracer.)
 */
bool
run_attribution_overhead_audit()
{
    if (!case_enabled("attribution")) {
        return true;
    }

    // Times ONLY the closed-loop run, not system construction or tree
    // building — those are attribution-independent and their malloc-heavy
    // noise would otherwise dominate the comparison.
    struct VariantRun {
        uint64_t events;
        double seconds;
    };
    auto run_variant = [&](bool enabled) -> VariantRun {
        sim::Simulation sim;
        sim.set_attribution(enabled);
        sim.flight_recorder().set_enabled(enabled);
        core::LambdaFsConfig config;
        config.num_deployments = 4;
        config.total_vcpus = 64.0;
        config.function.vcpus = 4.0;
        config.num_client_vms = 4;
        config.clients_per_vm = 16;
        config.prewarm_per_deployment = 1;
        core::LambdaFs fs(sim, config);
        ns::TreeSpec spec;
        ns::BuiltTree built = ns::build_balanced_tree(
            fs.authoritative_tree(), spec, ns::UserContext{}, 0);
        workload::MicrobenchConfig mcfg;
        mcfg.op = OpType::kStat;
        mcfg.num_clients = 64;
        mcfg.ops_per_client = 384;
        mcfg.seed = 7;
        Clock::time_point t0 = Clock::now();
        workload::run_microbench(sim, fs, std::move(built), mcfg);
        return {sim.events_executed(), seconds_since(t0)};
    };

    // Untimed warm-up: the first run through the bench path eats page
    // faults and allocator growth that would otherwise be charged to
    // whichever variant happens to go first.
    run_variant(false);

    // Paired A/B reps: each rep times both variants back-to-back, so both
    // halves see the same machine weather (CPU steal on a shared host
    // lasts longer than one rep) and the pair's delta cancels it; the
    // order alternates per rep to cancel positional bias too. The median
    // over pairs then discards reps where a spike landed inside one half.
    // An unpaired best-of-N comparison is NOT robust here: back-to-back
    // best-of-12 runs of the identical variant were observed 5% apart on
    // this class of machine.
    double best_on = 1e300;
    double best_off = 1e300;
    uint64_t events = 0;
    auto measure_batch = [&](int pairs) -> double {
        std::vector<double> deltas;
        for (int r = 0; r < pairs; ++r) {
            bool on_first = (r % 2 == 0);
            VariantRun first = run_variant(on_first);
            VariantRun second = run_variant(!on_first);
            double on_s = on_first ? first.seconds : second.seconds;
            double off_s = on_first ? second.seconds : first.seconds;
            events = first.events;
            best_on = std::min(best_on, on_s);
            best_off = std::min(best_off, off_s);
            deltas.push_back((on_s - off_s) / off_s);
        }
        std::sort(deltas.begin(), deltas.end());
        return deltas[deltas.size() / 2];
    };

    // More pairs than the default best-of reps: the median's variance is
    // what sets this gate's flake rate, and each pair is only ~0.3 s. A
    // failing first batch gets one fresh batch — a steal burst long
    // enough to bias a whole batch still clears between batches, while a
    // real regression fails both.
    int pairs = std::max(reps(), 15);
    double delta = measure_batch(pairs);
    int batches = 1;
    if (delta > 0.05) {
        std::printf("[bench_kernel] attribution delta %.2f%% over budget; "
                    "re-measuring once to reject machine noise\n",
                    delta * 100.0);
        delta = std::min(delta, measure_batch(pairs));
        batches = 2;
    }
    double on = static_cast<double>(events) / best_on;
    double off = static_cast<double>(events) / best_off;
    std::printf("[bench_kernel] case=attribution_on events=%llu wall_s=%.4f "
                "events_per_sec=%.0f\n",
                static_cast<unsigned long long>(events), best_on, on);
    std::printf("[bench_kernel] case=attribution_off events=%llu "
                "wall_s=%.4f events_per_sec=%.0f\n",
                static_cast<unsigned long long>(events), best_off, off);
    bench_log_entry("attribution_on", events, best_on, on);
    bench_log_entry("attribution_off", events, best_off, off);
    std::printf("[bench_kernel] case=attribution_delta delta_pct=%.2f "
                "(limit 5.00, median of %d paired reps x %d batch%s)\n",
                delta * 100.0, pairs, batches, batches > 1 ? "es" : "");
    if (delta > 0.05) {
        std::fprintf(stderr,
                     "FAIL: enabled attribution costs %.2f%% (>5%%) on the "
                     "end-to-end bench path\n",
                     delta * 100.0);
        return false;
    }
    return true;
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    using namespace lfs::bench;
    parse_args(argc, argv);
    print_banner("bench_kernel",
                 "Event-kernel dispatch throughput (wall-clock)");

    measure_case("callback_churn", run_callback_churn);
    measure_case("same_time_fifo", run_same_time_fifo);
    measure_case("coroutine_ping", run_coroutine_ping);
    measure_case("semaphore_chain", run_semaphore_chain);
    bool ok = run_tracing_overhead_audit();
    ok = run_attribution_overhead_audit() && ok;

    if (!ok) {
        return 1;
    }
    std::printf("bench_kernel ok\n");
    return 0;
}
