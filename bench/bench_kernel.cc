/**
 * @file
 * Event-kernel microbenchmark: measures raw simulator dispatch throughput
 * (events/sec of wall-clock time) for the scheduling patterns every λFS
 * experiment is built from. This is the binary the perf-smoke gate runs —
 * it prints machine-readable `events_per_sec` lines per case.
 *
 * Cases:
 *   callback_churn   schedule+dispatch of small lambda events, mixed delays
 *   same_time_fifo   bursts of same-timestamp events (seq tie-break path)
 *   coroutine_ping   processes co_awaiting delay() in a loop (handle path)
 *   semaphore_chain  contended Semaphore FIFO hand-off between processes
 *   tracing_overhead disabled-tracer start_span vs no call at all; asserts
 *                    the disabled path costs <5% (one branch, §ISSUE-5)
 *
 * Measurement: best-of-LFS_KERNEL_REPS (default 5) wall time per case over
 * LFS_KERNEL_EVENTS events (default 2M); best-of damps scheduler noise.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/harness.h"
#include "src/sim/primitives.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace lfs::bench {
namespace {

using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

int
total_events()
{
    return env_int("LFS_KERNEL_EVENTS", 2'000'000);
}

int
reps()
{
    return env_int("LFS_KERNEL_REPS", 5);
}

/** LFS_KERNEL_CASES: comma-separated case filter (empty = all). */
bool
case_enabled(const char* name)
{
    const char* filter = std::getenv("LFS_KERNEL_CASES");
    if (filter == nullptr || *filter == '\0') {
        return true;
    }
    std::string padded = ",";
    padded += filter;
    padded += ',';
    std::string needle = ",";
    needle += name;
    needle += ',';
    return padded.find(needle) != std::string::npos;
}

/** Run @p body reps() times; report the best run's events/sec. */
template <typename Body>
double
measure_case(const char* name, Body&& body)
{
    if (!case_enabled(name)) {
        return 0.0;
    }
    double best_wall = 1e300;
    uint64_t events = 0;
    for (int r = 0; r < reps(); ++r) {
        Clock::time_point t0 = Clock::now();
        events = body();
        double wall = seconds_since(t0);
        if (wall < best_wall) {
            best_wall = wall;
        }
    }
    double eps = static_cast<double>(events) / best_wall;
    std::printf("[bench_kernel] case=%s events=%llu wall_s=%.4f "
                "events_per_sec=%.0f\n",
                name, static_cast<unsigned long long>(events), best_wall,
                eps);
    return eps;
}

/** Shared state for the churn functor below. */
struct ChurnCtx {
    sim::Simulation* sim;
    int scheduled = 0;
    int budget = 0;
};

/**
 * Self-rescheduling 24-byte functor with an inline xorshift delay stream —
 * the shape of a production call site (a fresh small lambda per schedule,
 * larger than std::function's 16-byte SBO, so the pre-pool kernel paid one
 * heap allocation per event).
 */
struct ChurnFire {
    ChurnCtx* ctx;
    uint64_t rng;

    void
    operator()()
    {
        if (ctx->scheduled < ctx->budget) {
            ++ctx->scheduled;
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            ctx->sim->schedule(sim::usec(static_cast<int64_t>(rng & 15)),
                               ChurnFire{ctx, rng});
        }
    }
};

/** 4096 in-flight self-rescheduling events with small mixed delays. */
uint64_t
run_callback_churn()
{
    sim::Simulation sim;
    ChurnCtx ctx{&sim, 0, total_events()};
    sim.reserve_events(4096);
    for (int i = 0; i < 4096 && ctx.scheduled < ctx.budget; ++i) {
        ++ctx.scheduled;
        sim.schedule(sim::usec(i & 15),
                     ChurnFire{&ctx, 0x9E3779B97F4A7C15ull + uint64_t(i)});
    }
    sim.run();
    return sim.events_executed();
}

/** Bursts of events at one instant: exercises the seq FIFO tie-break. */
uint64_t
run_same_time_fifo()
{
    sim::Simulation sim;
    const int budget = total_events();
    const int burst = 256;
    int scheduled = 0;
    std::function<void()> pump = [&] {
        for (int i = 0; i < burst && scheduled < budget; ++i) {
            ++scheduled;
            sim.schedule(0, [] {});
        }
        if (scheduled < budget) {
            ++scheduled;
            sim.schedule(sim::usec(1), pump);
        }
    };
    pump();
    sim.run();
    return sim.events_executed();
}

sim::Task<void>
co_ping(sim::Simulation& sim, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await sim::delay(sim, sim::usec(1));
    }
}

/** Coroutine resume path: delay() awaits are the dominant sim event. */
uint64_t
run_coroutine_ping()
{
    sim::Simulation sim;
    const int procs = 64;
    const int rounds = total_events() / procs;
    for (int p = 0; p < procs; ++p) {
        sim::spawn(co_ping(sim, rounds));
    }
    sim.run();
    return sim.events_executed();
}

sim::Task<void>
co_chain(sim::Simulation& sim, sim::Semaphore& sem, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await sem.acquire();
        co_await sim::delay(sim, sim::usec(1));
        sem.release();
    }
}

/** Contended semaphore: wake-ups flow through the kernel queue. */
uint64_t
run_semaphore_chain()
{
    sim::Simulation sim;
    sim::Semaphore sem(sim, 4);
    const int procs = 32;
    const int rounds = total_events() / (3 * procs);
    for (int p = 0; p < procs; ++p) {
        sim::spawn(co_chain(sim, sem, rounds));
    }
    sim.run();
    return sim.events_executed();
}

/**
 * Satellite: disabled-path overhead audit. The event hot path may touch
 * Tracer/MetricsRegistry only behind a single predictable branch, so a
 * run that *calls* start_span on a disabled tracer must be within 5% of a
 * run whose loop body omits the call entirely (the compiled-out shape).
 */
bool
run_tracing_overhead_audit()
{
    const int budget = total_events();

    auto run_with_tracing_call = [&]() -> uint64_t {
        sim::Simulation sim;
        // Tracing stays disabled: start_span must be one branch + return.
        int scheduled = 0;
        std::function<void()> fire = [&] {
            sim::Span s = sim.tracer().start_trace("bench", "noop");
            if (scheduled < budget) {
                ++scheduled;
                sim.schedule(sim::usec(1), fire);
            }
        };
        for (int i = 0; i < 32 && scheduled < budget; ++i) {
            ++scheduled;
            sim.schedule(sim::usec(i), fire);
        }
        sim.run();
        return sim.events_executed();
    };
    auto run_compiled_out = [&]() -> uint64_t {
        sim::Simulation sim;
        int scheduled = 0;
        std::function<void()> fire = [&] {
            if (scheduled < budget) {
                ++scheduled;
                sim.schedule(sim::usec(1), fire);
            }
        };
        for (int i = 0; i < 32 && scheduled < budget; ++i) {
            ++scheduled;
            sim.schedule(sim::usec(i), fire);
        }
        sim.run();
        return sim.events_executed();
    };

    if (!case_enabled("tracing_off")) {
        return true;
    }
    // Interleave A/B reps so machine-load drift hits both variants
    // equally; best-of per variant damps the remaining jitter.
    double best_with = 1e300;
    double best_without = 1e300;
    uint64_t events = 0;
    for (int r = 0; r < reps(); ++r) {
        Clock::time_point t0 = Clock::now();
        events = run_with_tracing_call();
        best_with = std::min(best_with, seconds_since(t0));
        t0 = Clock::now();
        events = run_compiled_out();
        best_without = std::min(best_without, seconds_since(t0));
    }
    double with_call = static_cast<double>(events) / best_with;
    double without = static_cast<double>(events) / best_without;
    std::printf("[bench_kernel] case=tracing_off events=%llu wall_s=%.4f "
                "events_per_sec=%.0f\n",
                static_cast<unsigned long long>(events), best_with,
                with_call);
    std::printf("[bench_kernel] case=tracing_compiled_out events=%llu "
                "wall_s=%.4f events_per_sec=%.0f\n",
                static_cast<unsigned long long>(events), best_without,
                without);
    double delta = (without - with_call) / without;
    std::printf("[bench_kernel] case=tracing_delta delta_pct=%.2f "
                "(limit 5.00)\n",
                delta * 100.0);
    if (delta > 0.05) {
        std::fprintf(stderr,
                     "FAIL: disabled tracing costs %.2f%% (>5%%) on the "
                     "event hot path\n",
                     delta * 100.0);
        return false;
    }
    return true;
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    using namespace lfs::bench;
    parse_args(argc, argv);
    print_banner("bench_kernel",
                 "Event-kernel dispatch throughput (wall-clock)");

    measure_case("callback_churn", run_callback_churn);
    measure_case("same_time_fifo", run_same_time_fifo);
    measure_case("coroutine_ping", run_coroutine_ping);
    measure_case("semaphore_chain", run_semaphore_chain);
    bool ok = run_tracing_overhead_audit();

    if (!ok) {
        return 1;
    }
    std::printf("bench_kernel ok\n");
    return 0;
}
