/**
 * @file
 * Namespace scale — the two-tier residency experiment (DESIGN.md §15):
 * wide-subtree namespaces of 1M-10M inodes (LFS_NS_MAX_INODES raises the
 * ceiling to 20M) built at slab speed, then resolved by 1..N interleaved
 * client streams, with the slab budget unset (fully resident) versus a
 * sub-resident LFS_NS_BUDGET_MB (default 64 MB) that forces the cold
 * tier to carry most file records.
 *
 * Reported per point: residency split (resident/cold inodes and bytes),
 * bytes-per-inode against the ~216 B/inode legacy node-per-inode layout,
 * page-in/page-out traffic, and — as wall-clock [perf] lines exempt from
 * the determinism gate — build rate, resolve ns/op, and demand-fault
 * service percentiles. Everything outside [perf] lines is deterministic
 * across LFS_SWEEP_JOBS settings.
 */
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/harness.h"
#include "common/sweep.h"
#include "src/namespace/namespace_tree.h"
#include "src/namespace/tree_builder.h"

namespace lfs::bench {
namespace {

/** The std::map-of-nodes layout this tree replaced: one heap node per
    inode (~160 B of std::map bookkeeping + key) plus per-node child map
    overhead — measured at ~216 B/inode before the slab refactor. */
constexpr double kLegacyBytesPerInode = 216.0;

/** Everything one sweep point measures, shipped child -> parent. */
struct PointResult {
    // Deterministic fields (printed in the result table).
    size_t resident_inodes = 0;
    size_t cold_inodes = 0;
    size_t resident_bytes = 0;
    size_t cold_bytes = 0;
    double bytes_per_inode = 0.0;
    uint64_t pageins = 0;
    uint64_t pageouts = 0;
    // Wall-clock fields (printed only on [perf] lines).
    double build_inodes_per_sec = 0.0;
    double resolve_ns_per_op = 0.0;
    double fault_p50_ns = 0.0;
    double fault_p99_ns = 0.0;
};

std::string
encode(const PointResult& r)
{
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%zu %zu %zu %zu %.17g %llu %llu %.17g %.17g %.17g %.17g",
                  r.resident_inodes, r.cold_inodes, r.resident_bytes,
                  r.cold_bytes, r.bytes_per_inode,
                  static_cast<unsigned long long>(r.pageins),
                  static_cast<unsigned long long>(r.pageouts),
                  r.build_inodes_per_sec, r.resolve_ns_per_op, r.fault_p50_ns,
                  r.fault_p99_ns);
    return std::string(buf);
}

PointResult
decode(const std::string& payload)
{
    PointResult r;
    unsigned long long pageins = 0;
    unsigned long long pageouts = 0;
    std::sscanf(payload.c_str(),
                "%zu %zu %zu %zu %lg %llu %llu %lg %lg %lg %lg",
                &r.resident_inodes, &r.cold_inodes, &r.resident_bytes,
                &r.cold_bytes, &r.bytes_per_inode, &pageins, &pageouts,
                &r.build_inodes_per_sec, &r.resolve_ns_per_op, &r.fault_p50_ns,
                &r.fault_p99_ns);
    r.pageins = pageins;
    r.pageouts = pageouts;
    return r;
}

/**
 * Run one sweep point: build a wide subtree of @p inodes under @p budget,
 * then drive @p clients interleaved resolve streams over the file
 * population (@p resolves total lookups, deterministic per-label seed).
 */
PointResult
run_point(const std::string& label, int64_t inodes, size_t budget_bytes,
          int clients, int64_t resolves)
{
    ns::NamespaceTree tree;
    tree.set_budget_bytes(budget_bytes);
    const ns::UserContext user{};

    auto t0 = std::chrono::steady_clock::now();
    ns::BuiltTree built =
        ns::build_wide_subtree(tree, "/scale", inodes, /*fanout=*/64, user, 0);
    double build_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // Interleaved client streams: each stream is an independent splitmix64
    // walk over the file population, consumed round-robin. More streams
    // spread the touch pattern, defeating clock-eviction locality the way
    // concurrent NameNodes would.
    std::vector<uint64_t> stream(static_cast<size_t>(clients));
    uint64_t seed = sweep_seed(label);
    for (int c = 0; c < clients; ++c) {
        stream[static_cast<size_t>(c)] =
            seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(c + 1);
    }
    auto next_index = [&](int c) {
        uint64_t& s = stream[static_cast<size_t>(c)];
        s += 0x9e3779b97f4a7c15ull;
        uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return static_cast<size_t>(z % built.files.size());
    };

    ns::IdChain chain;
    int64_t failures = 0;
    if (built.files.empty()) {
        resolves = 0;  // degenerate smoke sizes: nothing to look up
    }
    auto r0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < resolves; ++i) {
        const std::string& p = built.files[next_index(
            static_cast<int>(i % static_cast<int64_t>(clients)))];
        chain.clear();
        Status st = tree.resolve_ids(p, user, ns::Follow::kFinal, &chain);
        if (!st.ok()) {
            ++failures;
        }
    }
    double resolve_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
            .count();
    if (failures != 0) {
        std::fprintf(stderr, "bench_namespace_scale: %lld failed resolves\n",
                     static_cast<long long>(failures));
        std::exit(1);
    }

    ns::ResidencyStats stats = tree.residency_stats();
    PointResult r;
    r.resident_inodes = stats.resident_inodes;
    r.cold_inodes = stats.cold_inodes;
    r.resident_bytes = stats.resident_bytes;
    r.cold_bytes = stats.cold_bytes;
    r.bytes_per_inode = stats.bytes_per_inode;
    r.pageins = stats.pageins;
    r.pageouts = stats.pageouts;
    r.build_inodes_per_sec =
        build_s > 0 ? static_cast<double>(inodes) / build_s : 0.0;
    r.resolve_ns_per_op =
        resolves > 0 ? resolve_s * 1e9 / static_cast<double>(resolves) : 0.0;
    r.fault_p50_ns = static_cast<double>(tree.fault_latency().p50());
    r.fault_p99_ns = static_cast<double>(tree.fault_latency().p99());
    bench_log_entry(label, static_cast<uint64_t>(resolves), resolve_s,
                    resolve_s > 0
                        ? static_cast<double>(resolves) / resolve_s
                        : 0.0);
    return r;
}

void
run_bench()
{
    const int64_t max_inodes =
        env_int("LFS_NS_MAX_INODES", 10'000'000);
    const size_t budget_mb =
        static_cast<size_t>(env_int("LFS_NS_BUDGET_MB", 64));
    const int64_t resolves = env_int("LFS_NS_RESOLVES", 200'000);

    std::vector<int64_t> sizes;
    for (int64_t n : {int64_t{1'000'000}, int64_t{4'000'000},
                      int64_t{10'000'000}, int64_t{20'000'000}}) {
        if (n <= max_inodes) {
            sizes.push_back(n);
        }
    }
    if (sizes.empty() || sizes.back() != max_inodes) {
        sizes.push_back(max_inodes);
    }

    // Per size: a fully-resident reference point, then the sub-resident
    // budget under 1 and 16 interleaved client streams.
    struct Point {
        int64_t inodes;
        bool budgeted;
        int clients;
    };
    std::vector<Point> points;
    std::vector<std::string> labels;
    SweepRunner sweep;
    for (int64_t n : sizes) {
        for (auto [budgeted, clients] :
             {std::pair<bool, int>{false, 1}, {true, 1}, {true, 16}}) {
            std::string label =
                "ns/inodes=" + std::to_string(n) +
                "/budget=" + (budgeted ? std::to_string(budget_mb) + "mb"
                                       : std::string("unset")) +
                "/clients=" + std::to_string(clients);
            points.push_back(Point{n, budgeted, clients});
            labels.push_back(label);
            size_t budget_bytes =
                budgeted ? budget_mb * (size_t{1} << 20) : SIZE_MAX;
            sweep.add(label, [=]() {
                return encode(
                    run_point(label, n, budget_bytes, clients, resolves));
            });
        }
    }

    std::vector<std::string> payloads = sweep.run();
    std::vector<PointResult> results;
    results.reserve(payloads.size());
    for (const std::string& p : payloads) {
        results.push_back(decode(p));
    }

    std::printf("\n  Residency under budget (resolves per point: %lld):\n",
                static_cast<long long>(resolves));
    std::printf("  %-44s %10s %10s %12s %8s %10s %10s\n", "point", "resident",
                "cold", "res_mb", "B/inode", "pageins", "pageouts");
    for (size_t i = 0; i < results.size(); ++i) {
        const PointResult& r = results[i];
        std::printf("  %-44s %10zu %10zu %12.1f %8.1f %10llu %10llu\n",
                    labels[i].c_str(), r.resident_inodes, r.cold_inodes,
                    static_cast<double>(r.resident_bytes) / (1 << 20),
                    r.bytes_per_inode,
                    static_cast<unsigned long long>(r.pageins),
                    static_cast<unsigned long long>(r.pageouts));
    }
    for (size_t i = 0; i < results.size(); ++i) {
        const PointResult& r = results[i];
        std::printf("  [perf] %s: build_inodes_per_sec=%.0f "
                    "resolve_ns_per_op=%.0f fault_p50_ns=%.0f "
                    "fault_p99_ns=%.0f\n",
                    labels[i].c_str(), r.build_inodes_per_sec,
                    r.resolve_ns_per_op, r.fault_p50_ns, r.fault_p99_ns);
    }

    // Checks against the §15 acceptance bar: the largest budgeted point
    // must hold the namespace with at most a third of the legacy layout's
    // per-inode footprint, and the budget must actually be sub-resident.
    const PointResult* biggest = nullptr;
    const PointResult* biggest_unset = nullptr;
    for (size_t i = 0; i < results.size(); ++i) {
        if (points[i].inodes != sizes.back()) {
            continue;
        }
        if (points[i].budgeted && points[i].clients == 1) {
            biggest = &results[i];
        }
        if (!points[i].budgeted) {
            biggest_unset = &results[i];
        }
    }
    std::printf("\n  Checks (%lld inodes):\n",
                static_cast<long long>(sizes.back()));
    if (biggest != nullptr && biggest_unset != nullptr) {
        print_check("budgeted bytes/inode <= legacy/3 (216 -> 72)",
                    fmt(biggest->bytes_per_inode, 1) + " B/inode" +
                        (biggest->bytes_per_inode <= kLegacyBytesPerInode / 3
                             ? " (ok)"
                             : " (EXCEEDED)"));
        print_check("cold tier carries most file records",
                    fmt(100.0 * static_cast<double>(biggest->cold_inodes) /
                            static_cast<double>(biggest->cold_inodes +
                                                biggest->resident_inodes),
                        1) +
                        "% cold");
        print_check("unset budget never touches the cold tier",
                    biggest_unset->pageouts == 0 &&
                            biggest_unset->cold_inodes == 0
                        ? "0 pageouts, 0 cold"
                        : "COLD TIER TOUCHED");
        print_check("resident footprint within budget + structural floor",
                    fmt(static_cast<double>(biggest->resident_bytes) /
                            (1 << 20),
                        1) +
                        " MB resident");
    }
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner(
        "Namespace scale",
        "Two-tier residency: slab-resident hot set, demand-paged cold tier");
    lfs::bench::run_bench();
    return 0;
}
