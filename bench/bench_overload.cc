/**
 * @file
 * Overload control under a metastable-failure trigger: the flat-rate
 * Spotify workload is pushed through a 2x offered-load burst combined
 * with a 60x store brownout, then settles into a 0.5x trough. The run
 * is repeated with the overload-control subsystem (deadline
 * propagation, bounded CoDel-style admission queues, retry budgets,
 * per-shard circuit breakers) enabled and disabled.
 *
 * With control off, every doomed write drags its client through a full
 * chain of timed-out attempts whose zombie executions keep occupying
 * NameNode and store slots, so goodput collapses far below even the
 * browned-out store's capacity and stays pinned there for the whole
 * storm — the metastable signature. With control on, doomed writes are
 * shed in microseconds (sojourn sheds trip the store breakers, retry
 * budgets and deadlines cap the storm) and the read-dominated traffic
 * keeps flowing at the pre-burst baseline.
 *
 * Environment knobs: LFS_BENCH_SCALE (default 0.125) scales clients,
 * vCPUs, store capacity and offered rate together; LFS_SEED (default 7)
 * seeds the run.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/harness.h"
#include "src/sim/fault.h"

namespace lfs::bench {
namespace {

constexpr sim::SimTime kWarmup = sim::sec(5);
constexpr sim::SimTime kBurstFrom = sim::sec(25);
constexpr sim::SimTime kBurstUntil = sim::sec(55);
constexpr sim::SimTime kEnd = sim::sec(110);
constexpr double kBurstMultiplier = 2.0;
constexpr double kTroughMultiplier = 0.5;
constexpr double kBrownoutMultiplier = 60.0;

struct PhaseStats {
    double goodput = 0.0;  ///< ops/s completed OK
    double p99_ms = 0.0;   ///< p99 latency of admitted (completed) ops
};

struct OverloadRun {
    PhaseStats pre;
    PhaseStats storm;
    PhaseStats trough;
    std::vector<double> goodput_per_s;
    uint64_t retries = 0;
    int64_t offered = 0;
    int64_t completed = 0;
    int64_t shed = 0;
    int64_t deadline_missed = 0;
    workload::DegradationStats deg;
};

OverloadRun
run_once(bool control, double base_rate, uint64_t seed)
{
    double s = scale();
    double f = s * 8.0;  // f = 1.0 at the default bench scale
    sim::Simulation sim;
    ScopedRunObservation observe(sim, control ? "overload-control-on"
                                              : "overload-control-off");
    core::LambdaFsConfig config = make_lambda_config(
        64.0 * f, 2, std::max(1, static_cast<int>(std::lround(32.0 * f))),
        f);
    config.seed = seed;
    // Concentrate the pool into 4 fat deployments (the λFS paper's
    // per-deployment layout) so write traffic funnels through the same
    // shards and the brownout actually bites.
    config.num_deployments = 4;
    config.function.vcpus = std::clamp(64.0 * f / 16.0, 0.5, 6.25);
    config.function.memory_gb = 6.0 * config.function.vcpus / 6.25;
    // The paper's own anti-thrashing defence (§4.4) would partially mask
    // the storm; keep the comparison about the overload-control subsystem.
    config.client.anti_thrashing = false;
    config.client.http_timeout = sim::sec(3);
    config.overload.enabled = control;
    // Tight per-op SLO deadline: work that cannot finish inside it is
    // refused at store admission instead of being served late, so the
    // latency of *admitted* ops stays bounded and doomed writes give up
    // fast instead of dragging their worker through the full backoff
    // schedule.
    config.overload.op_deadline = sim::msec(150);
    // Aggressive CoDel sojourn bound: during the brownout the store's
    // *service* time is the latency floor for admitted work, so any
    // queueing on top of it is pure SLO erosion — shed it instead.
    config.overload.store_sojourn_limit = sim::msec(10);
    core::LambdaFs fs(sim, config);

    sim::FaultPlan plan(sim, seed * 7919 + 3);
    sim::OfferedLoadWindow burst;
    burst.from = kBurstFrom;
    burst.until = kBurstUntil;
    burst.multiplier = kBurstMultiplier;
    plan.add_offered_load(burst);
    sim::OfferedLoadWindow trough;
    trough.from = kBurstUntil;
    trough.until = kEnd;
    trough.multiplier = kTroughMultiplier;
    plan.add_offered_load(trough);
    sim::StoreBrownoutWindow brownout;
    brownout.shard = -1;
    brownout.from = kBurstFrom;
    brownout.until = kBurstUntil;
    brownout.service_multiplier = kBrownoutMultiplier;
    plan.add_store_brownout(brownout);

    // A compact namespace keeps the write traffic concentrated (matching
    // the metastable regression test) rather than diluted across a large
    // scaled tree.
    ns::TreeSpec spec;
    spec.root = "/bench";
    spec.depth = 2;
    spec.fanout = 4;
    spec.files_per_dir = 8;
    ns::BuiltTree tree =
        ns::build_balanced_tree(fs.authoritative_tree(), spec, {}, 0);

    // Snapshot the cumulative latency histogram at each phase boundary so
    // per-phase p99s can be recovered as bucket-wise deltas.
    const sim::Histogram& latency = fs.metrics().overall_latency();
    sim::Histogram at_burst;
    sim::Histogram at_trough;
    sim.schedule_at(kBurstFrom, [&] { at_burst = latency; });
    sim.schedule_at(kBurstUntil, [&] { at_trough = latency; });

    workload::SpotifyConfig wcfg;
    wcfg.base_throughput = base_rate;
    wcfg.burst_cap = 1.0;  // Pareto draws clamp to the base: flat rate
    wcfg.force_peak_burst = false;
    wcfg.epoch = sim::sec(15);
    wcfg.duration = kEnd - kWarmup;
    wcfg.num_client_vms = config.num_client_vms;
    wcfg.seed = seed;
    sim.run_until(kWarmup);
    workload::SpotifyWorkload workload(sim, fs, std::move(tree), wcfg);
    workload.start();
    sim.run_until(kEnd + sim::sec(30));

    OverloadRun run;
    const sim::TimeSeries& goodput = fs.metrics().throughput();
    auto phase = [&](sim::SimTime from, sim::SimTime until,
                     const sim::Histogram& window) {
        PhaseStats stats;
        size_t lo = static_cast<size_t>(from / sim::sec(1));
        size_t hi = static_cast<size_t>(until / sim::sec(1));
        double sum = 0.0;
        for (size_t i = lo; i < hi; ++i) {
            sum += goodput.rate_at(i);
        }
        stats.goodput = hi > lo ? sum / static_cast<double>(hi - lo) : 0.0;
        stats.p99_ms = static_cast<double>(window.p99()) / 1e3;
        return stats;
    };
    run.pre = phase(sim::sec(10), kBurstFrom, at_burst);
    run.storm =
        phase(kBurstFrom + sim::sec(5), kBurstUntil, at_trough.delta(at_burst));
    run.trough = phase(kEnd - sim::sec(25), kEnd - sim::sec(5),
                       latency.delta(at_trough));
    size_t bins = static_cast<size_t>(kEnd / sim::sec(1));
    for (size_t i = 0; i < bins; ++i) {
        run.goodput_per_s.push_back(goodput.rate_at(i));
    }
    for (size_t c = 0; c < fs.client_count(); ++c) {
        run.retries += fs.lfs_client(c).resubmissions();
    }
    run.offered = workload.offered();
    run.completed = static_cast<int64_t>(fs.metrics().completed());
    run.shed = static_cast<int64_t>(fs.metrics().shed());
    run.deadline_missed = static_cast<int64_t>(fs.metrics().deadline_missed());
    run.deg = fs.degradation();
    return run;
}

void
run_bench()
{
    double f = scale() * 8.0;
    double base_rate = 1500.0 * f;
    uint64_t seed = static_cast<uint64_t>(env_int("LFS_SEED", 7));
    std::printf("  phases: pre-burst [0,%ds) | storm [%ds,%ds) = %.0fx load "
                "+ %.0fx store brownout | trough [%ds,%ds) = %.1fx load\n",
                static_cast<int>(sim::to_sec(kBurstFrom)),
                static_cast<int>(sim::to_sec(kBurstFrom)),
                static_cast<int>(sim::to_sec(kBurstUntil)), kBurstMultiplier,
                kBrownoutMultiplier,
                static_cast<int>(sim::to_sec(kBurstUntil)),
                static_cast<int>(sim::to_sec(kEnd)), kTroughMultiplier);
    std::printf("  base rate %.0f ops/s, seed %llu\n\n", base_rate,
                static_cast<unsigned long long>(seed));

    OverloadRun on = run_once(true, base_rate, seed);
    OverloadRun off = run_once(false, base_rate, seed);

    std::printf("  Goodput timeline (ops/sec):\n");
    std::printf("  %-6s %14s %14s   %s\n", "t(s)", "control on",
                "control off", "phase");
    for (size_t t = 5; t < on.goodput_per_s.size(); t += 5) {
        const char* tag = "";
        if (t == 25) {
            tag = "<- burst + brownout begin";
        } else if (t == 55) {
            tag = "<- storm ends, 0.5x trough";
        }
        std::printf("  %-6zu %14.0f %14.0f   %s\n", t, on.goodput_per_s[t],
                    t < off.goodput_per_s.size() ? off.goodput_per_s[t] : 0,
                    tag);
    }

    std::printf("\n  Phase summary (goodput ops/s, p99 of admitted ops ms):\n");
    std::printf("  %-12s %12s %10s %14s %10s\n", "phase", "on gp",
                "on p99", "off gp", "off p99");
    auto row = [](const char* name, const PhaseStats& a,
                  const PhaseStats& b) {
        std::printf("  %-12s %12.0f %10.2f %14.0f %10.2f\n", name, a.goodput,
                    a.p99_ms, b.goodput, b.p99_ms);
    };
    row("pre-burst", on.pre, off.pre);
    row("storm", on.storm, off.storm);
    row("trough", on.trough, off.trough);

    IndustrialRun summary;
    summary.system = "lambda-fs (overload control on)";
    summary.completed = on.completed;
    summary.offered = on.offered;
    summary.ops_shed = on.shed;
    summary.ops_deadline_missed = on.deadline_missed;
    summary.degradation = on.deg;
    print_degradation_summary(summary, /*always=*/true);

    std::printf("\n  Checks:\n");
    print_check("control holds pre-burst goodput through the storm",
                fmt(on.storm.goodput / on.pre.goodput, 2) +
                    "x of pre-burst (flag-off: " +
                    fmt(off.storm.goodput / off.pre.goodput, 2) + "x)");
    print_check("flag-off collapses below browned-out capacity",
                fmt(off.storm.goodput / on.storm.goodput, 2) +
                    "x of controlled storm goodput");
    double p99_bound = 5.0 * off.pre.p99_ms;
    print_check("storm p99 of admitted ops within 5x of uncontrolled "
                "pre-burst p99",
                fmt(on.storm.p99_ms, 2) + " ms vs bound " +
                    fmt(p99_bound, 2) + " ms" +
                    (on.storm.p99_ms <= p99_bound ? " (ok)" : " (VIOLATED)"));
    print_check("goodput returns to the offered trough rate",
                fmt(on.trough.goodput, 0) + " ops/s vs offered " +
                    fmt(kTroughMultiplier * base_rate, 0));
    double budget_frac = on.offered > 0
                             ? static_cast<double>(on.retries) /
                                   static_cast<double>(on.offered)
                             : 0.0;
    print_check("retries capped at the budget fraction (0.1 of fresh)",
                fmt(100.0 * budget_frac, 1) + "% of offered (" +
                    fmt(static_cast<double>(on.retries), 0) + " vs flag-off " +
                    fmt(static_cast<double>(off.retries), 0) + ")");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner(
        "Overload", "Graceful degradation under a metastable-failure trigger");
    lfs::bench::run_bench();
    return 0;
}
