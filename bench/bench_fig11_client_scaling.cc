/**
 * @file
 * Figure 11 — client-driven scaling: throughput of λFS, HopsFS,
 * HopsFS+Cache, InfiniCache, and CephFS for read, ls, stat, create, and
 * mkdir as the client count grows 8 -> 1024 under a fixed 512-vCPU
 * budget (each client performs LFS_OPS_PER_CLIENT operations; the paper
 * uses 3072).
 */
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/harness.h"
#include "common/sweep.h"
#include "src/workload/microbench.h"

namespace lfs::bench {
namespace {

void
run_figure()
{
    const double vcpus = env_double("LFS_VCPUS", 512.0);
    const int max_clients = env_int("LFS_MAX_CLIENTS", 1024);
    std::vector<int> client_counts;
    for (int c = 8; c <= max_clients; c *= 2) {
        client_counts.push_back(c);
    }
    // One sweep point per (op, system, clients) cell; each runs in its
    // own forked child under LFS_SWEEP_JOBS and returns ops/sec.
    struct Cell {
        OpType op;
        std::string system;
    };
    std::vector<Cell> cells;
    SweepRunner sweep;
    for (OpType op : microbench_ops()) {
        for (const std::string& system : microbench_systems()) {
            for (int clients : client_counts) {
                std::string label = std::string("fig11/") + op_name(op) +
                                    "/" + system +
                                    "/clients=" + std::to_string(clients);
                cells.push_back(Cell{op, system});
                sweep.add(label, [=]() {
                    SystemInstance instance =
                        make_system(system, vcpus, clients);
                    workload::MicrobenchConfig mcfg;
                    mcfg.op = op;
                    mcfg.num_clients = clients;
                    mcfg.ops_per_client = ops_per_client();
                    mcfg.seed = sweep_seed(label);
                    workload::MicrobenchResult r = workload::run_microbench(
                        *instance.sim, *instance.dfs,
                        std::move(instance.tree), mcfg);
                    char buf[64];
                    std::snprintf(buf, sizeof(buf), "%.17g", r.ops_per_sec);
                    return std::string(buf);
                });
            }
        }
    }

    // results[op][system] -> series over client counts
    std::map<OpType, std::map<std::string, std::vector<double>>> results;
    std::vector<std::string> payloads = sweep.run();
    for (size_t i = 0; i < payloads.size(); ++i) {
        results[cells[i].op][cells[i].system].push_back(
            std::strtod(payloads[i].c_str(), nullptr));
    }

    for (OpType op : microbench_ops()) {
        std::printf("\n  %s throughput (ops/sec) vs number of clients:\n",
                    op_name(op));
        std::printf("  %-8s", "clients");
        for (const auto& system : microbench_systems()) {
            std::printf(" %15s", system.c_str());
        }
        std::printf("\n");
        for (size_t i = 0; i < client_counts.size(); ++i) {
            std::printf("  %-8d", client_counts[i]);
            for (const auto& system : microbench_systems()) {
                std::printf(" %15.0f", results[op][system][i]);
            }
            std::printf("\n");
        }
    }

    // Paper-vs-measured checks at the largest problem size.
    auto at_max = [&](OpType op, const std::string& system) {
        return results[op][system].back();
    };
    std::printf("\n  Checks (1024 clients):\n");
    print_check("lambda-fs read ~29x hopsfs",
                fmt(at_max(OpType::kReadFile, "lambda-fs") /
                    at_max(OpType::kReadFile, "hopsfs")) + "x");
    print_check("lambda-fs stat ~8x hopsfs",
                fmt(at_max(OpType::kStat, "lambda-fs") /
                    at_max(OpType::kStat, "hopsfs")) + "x");
    print_check("lambda-fs ls ~21x hopsfs",
                fmt(at_max(OpType::kLs, "lambda-fs") /
                    at_max(OpType::kLs, "hopsfs")) + "x");
    print_check("lambda-fs create ~1.5x hopsfs",
                fmt(at_max(OpType::kCreateFile, "lambda-fs") /
                    at_max(OpType::kCreateFile, "hopsfs")) + "x");
    print_check("mkdir roughly equal (store-bound)",
                fmt(at_max(OpType::kMkdir, "lambda-fs") /
                    at_max(OpType::kMkdir, "hopsfs")) + "x");
    print_check("cephfs wins reads at small scale, plateaus later",
                fmt(results[OpType::kReadFile]["cephfs"][0] /
                    results[OpType::kReadFile]["lambda-fs"][0]) +
                    "x at 8 clients vs " +
                    fmt(at_max(OpType::kReadFile, "cephfs") /
                        at_max(OpType::kReadFile, "lambda-fs")) +
                    "x at 1024");
    print_check("cephfs create beats the NDB-backed systems",
                fmt(at_max(OpType::kCreateFile, "cephfs") /
                    at_max(OpType::kCreateFile, "hopsfs")) + "x hopsfs");
    print_check("infinicache collapses under load",
                fmt(at_max(OpType::kReadFile, "infinicache") /
                    at_max(OpType::kReadFile, "lambda-fs")) +
                    "x of lambda-fs read");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Figure 11",
                             "Client-driven scaling, 512 vCPUs fixed");
    lfs::bench::run_figure();
    return 0;
}
