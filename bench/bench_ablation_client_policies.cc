/**
 * @file
 * Ablation — client-side resilience policies (Appendices B and C):
 * straggler mitigation and anti-thrashing, evaluated under fault
 * injection (straggler mitigation trims tail latency when NameNodes die
 * mid-request).
 */
#include <cstdio>
#include <memory>

#include "common/harness.h"
#include "src/workload/fault_injector.h"
#include "src/workload/microbench.h"

namespace lfs::bench {
namespace {

struct Policy {
    const char* label;
    bool straggler;
    bool anti_thrash;
};

void
run_ablation()
{
    const double vcpus = env_double("LFS_VCPUS", 256.0);
    const int clients = env_int("LFS_CLIENTS", 256);
    Policy policies[] = {
        {"both on (default)", true, true},
        {"no straggler mitigation", false, true},
        {"no anti-thrashing", true, false},
        {"both off", false, false},
    };

    std::printf("\n  with one NameNode killed every 5 s:\n");
    std::printf("  %-26s %12s %12s %12s %12s\n", "policy", "ops/sec",
                "mean ms", "p99 ms", "failed");
    for (const Policy& policy : policies) {
        sim::Simulation sim;
        ScopedRunObservation obs(sim, std::string("policy/") + policy.label);
        core::LambdaFsConfig config = make_lambda_config(vcpus, 8,
                                                         clients / 8);
        config.client.straggler_mitigation = policy.straggler;
        config.client.anti_thrashing = policy.anti_thrash;
        core::LambdaFs fs(sim, config);
        ns::BuiltTree tree = build_bench_tree(fs.authoritative_tree());
        workload::FaultInjector injector(sim, sim::sec(5), [&fs](int round) {
            return fs.kill_name_node(round %
                                     fs.platform().deployment_count());
        });
        injector.start(sim::sec(3600));
        workload::MicrobenchConfig mcfg;
        mcfg.op = OpType::kReadFile;
        mcfg.num_clients = clients;
        mcfg.ops_per_client = ops_per_client();
        workload::MicrobenchResult r =
            workload::run_microbench(sim, fs, std::move(tree), mcfg);
        std::printf("  %-26s %12.0f %12.2f %12.2f %12lld\n", policy.label,
                    r.ops_per_sec, r.mean_latency_ms, r.p99_latency_ms,
                    static_cast<long long>(r.failed));
    }
    std::printf("\n  (straggler mitigation resubmits requests stuck on dead "
                "NameNodes early,\n   cutting p99; Appendix B)\n");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner(
        "Ablation", "Client policies: straggler mitigation / anti-thrashing");
    lfs::bench::run_ablation();
    return 0;
}
