/**
 * @file
 * Lifecycle scenario sweep over the extended metadata op surface —
 * hard links, symlinks, setattr, statfs, file sessions, and GC — run
 * end-to-end through every microbenchmark system (DESIGN.md §12).
 *
 * Three scenarios, each a miniature of a lifecycle test in
 * tests/test_lifecycle_scenarios.cc, sized for a perf smoke:
 *
 *   symlink-farm    readers resolving a fan-in of links and a maximal
 *                   chain (stresses resolve splice-and-restart)
 *   hardlink-churn  link/setattr/unlink churn against one shared inode
 *                   (stresses link-count bookkeeping under load)
 *   session-gc      leaked leases over deleted files, reclaimed by a
 *                   GC pass after expiry (stresses orphan tracking)
 *
 * Prints per-system completed ops and mean simulated latency, then
 * cross-system sanity checks (no orphans or sessions survive, every
 * system agrees on the scenario outcome). --bench-log appends the
 * events/sec self-profile of every run to the perf trajectory.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common/harness.h"
#include "common/sweep.h"

namespace lfs::bench {
namespace {

/** Outcome tallies for one (system, scenario) run. */
struct ScenarioResult {
    int64_t ops_ok = 0;
    int64_t ops_failed = 0;
    double total_latency_ms = 0.0;
    int64_t reclaimed = 0;  ///< session-gc: orphans reclaimed by GC
    size_t orphans_left = 0;
    size_t sessions_left = 0;

    double
    mean_ms() const
    {
        int64_t n = ops_ok + ops_failed;
        return n == 0 ? 0.0 : total_latency_ms / static_cast<double>(n);
    }
};

/** LFS_SCENARIO_ROUNDS (default 40): per-client rounds per scenario. */
int
rounds()
{
    return env_int("LFS_SCENARIO_ROUNDS", 40);
}

Op
make(OpType type, std::string path, std::string dst = "")
{
    Op op;
    op.type = type;
    op.path = std::move(path);
    op.dst = std::move(dst);
    return op;
}

/** Execute one op, folding latency and outcome into @p result. */
sim::Task<void>
co_timed(sim::Simulation& sim, workload::DfsClient& client, Op op,
         ScenarioResult& result, OpResult* out = nullptr)
{
    sim::SimTime begin = sim.now();
    OpResult r = co_await client.execute(std::move(op));
    result.total_latency_ms += sim::to_msec(sim.now() - begin);
    if (r.status.ok()) {
        ++result.ops_ok;
    } else {
        ++result.ops_failed;
    }
    if (out != nullptr) {
        *out = std::move(r);
    }
}

// ----------------------------------------------------------------------
// Scenario 1: symlink farm
// ----------------------------------------------------------------------

sim::Task<void>
co_farm_reader(sim::Simulation& sim, workload::DfsClient& client, int id,
               int reps, ScenarioResult& result, int& done)
{
    for (int r = 0; r < reps; ++r) {
        co_await co_timed(sim, client,
                          make(OpType::kReadFile,
                               "/farm/l" + std::to_string((id * 7 + r) % 32)),
                          result);
        co_await co_timed(sim, client, make(OpType::kStat, "/farm/c7"),
                          result);
        co_await co_timed(sim, client, make(OpType::kReadFile, "/farm/c7"),
                          result);
    }
    ++done;
}

ScenarioResult
run_symlink_farm(SystemInstance& system)
{
    ns::UserContext root;
    ns::NamespaceTree& tree = system.dfs->authoritative_tree();
    tree.mkdirs("/data", root, 0);
    tree.mkdirs("/farm", root, 0);
    for (int i = 0; i < 8; ++i) {
        tree.create_file("/data/f" + std::to_string(i), root, 0);
    }
    for (int i = 0; i < 32; ++i) {
        tree.symlink("/farm/l" + std::to_string(i),
                     "/data/f" + std::to_string(i % 8), root, 0);
    }
    // Maximal legal chain: c7 -> ... -> c0 -> /data/f0.
    tree.symlink("/farm/c0", "/data/f0", root, 0);
    for (int i = 1; i < 8; ++i) {
        tree.symlink("/farm/c" + std::to_string(i),
                     "/farm/c" + std::to_string(i - 1), root, 0);
    }

    sim::Simulation& sim = *system.sim;
    sim.run_until(sim.now() + sim::sec(5));
    ScenarioResult result;
    int done = 0;
    for (int c = 0; c < 4; ++c) {
        sim::spawn(co_farm_reader(sim, system.dfs->client(c), c, rounds(),
                                  result, done));
    }
    sim.run_until(sim.now() + sim::sec(100000));
    if (done != 4) {
        std::printf("  !! symlink-farm: only %d/4 readers finished\n", done);
    }
    return result;
}

// ----------------------------------------------------------------------
// Scenario 2: hard-link churn
// ----------------------------------------------------------------------

sim::Task<void>
co_link_churner(sim::Simulation& sim, workload::DfsClient& client, int id,
                int reps, ScenarioResult& result, int& done)
{
    for (int r = 0; r < reps; ++r) {
        std::string ln =
            "/links/ln" + std::to_string(id) + "_" + std::to_string(r);
        co_await co_timed(sim, client,
                          make(OpType::kHardLink, "/stable/f", ln), result);
        Op chmod = make(OpType::kSetAttr, ln);
        chmod.attr.mask = AttrUpdate::kMode;
        chmod.attr.mode = (r % 2 == 0) ? 0600 : 0644;
        co_await co_timed(sim, client, std::move(chmod), result);
        if (r % 2 == 1) {
            co_await co_timed(sim, client, make(OpType::kDeleteFile, ln),
                              result);
        }
    }
    ++done;
}

ScenarioResult
run_hardlink_churn(SystemInstance& system)
{
    ns::UserContext root;
    ns::NamespaceTree& tree = system.dfs->authoritative_tree();
    tree.mkdirs("/stable", root, 0);
    tree.mkdirs("/links", root, 0);
    tree.create_file("/stable/f", root, 0);

    sim::Simulation& sim = *system.sim;
    sim.run_until(sim.now() + sim::sec(5));
    ScenarioResult result;
    int done = 0;
    for (int c = 0; c < 4; ++c) {
        sim::spawn(co_link_churner(sim, system.dfs->client(c), c, rounds(),
                                   result, done));
    }
    sim.run_until(sim.now() + sim::sec(100000));
    if (done != 4) {
        std::printf("  !! hardlink-churn: only %d/4 churners finished\n",
                    done);
    }
    return result;
}

// ----------------------------------------------------------------------
// Scenario 3: session leak and GC recovery
// ----------------------------------------------------------------------

sim::Task<void>
co_session_leaker(sim::Simulation& sim, workload::DfsClient& client, int id,
                  int reps, ScenarioResult& result, int& done)
{
    for (int r = 0; r < reps; ++r) {
        std::string path =
            "/work/s" + std::to_string(id) + "_" + std::to_string(r);
        co_await co_timed(sim, client, make(OpType::kCreateFile, path),
                          result);
        Op open = make(OpType::kOpenSession, path);
        open.session_id =
            1000 + static_cast<uint64_t>(id) * 10000 + static_cast<uint64_t>(r);
        open.lease_ttl = sim::sec(30);
        co_await co_timed(sim, client, std::move(open), result);
        // Delete while the session is open: the inode becomes an orphan.
        co_await co_timed(sim, client, make(OpType::kDeleteFile, path),
                          result);
        // Half the sessions close cleanly; the rest leak (crashed client).
        if (r % 2 == 0) {
            Op close = make(OpType::kCloseSession, "/");
            close.session_id = open.session_id;
            co_await co_timed(sim, client, std::move(close), result);
        }
    }
    ++done;
}

ScenarioResult
run_session_gc(SystemInstance& system)
{
    ns::UserContext root;
    system.dfs->authoritative_tree().mkdirs("/work", root, 0);

    sim::Simulation& sim = *system.sim;
    sim.run_until(sim.now() + sim::sec(5));
    ScenarioResult result;
    int done = 0;
    for (int c = 0; c < 4; ++c) {
        sim::spawn(co_session_leaker(sim, system.dfs->client(c), c, rounds(),
                                     result, done));
    }
    sim.run_until(sim.now() + sim::sec(100000));
    if (done != 4) {
        std::printf("  !! session-gc: only %d/4 leakers finished\n", done);
    }

    // Let every leaked lease expire, then reclaim with one GC pass.
    sim.run_until(sim.now() + sim::sec(60));
    OpResult gc;
    int gc_done = 0;
    sim::spawn([](sim::Simulation& s, workload::DfsClient& client,
                  ScenarioResult& res, OpResult& out,
                  int& flag) -> sim::Task<void> {
        co_await co_timed(s, client, make(OpType::kGcPrune, "/"), res, &out);
        ++flag;
    }(sim, system.dfs->client(0), result, gc, gc_done));
    sim.run_until(sim.now() + sim::sec(100000));
    if (gc_done != 1 || !gc.status.ok()) {
        std::printf("  !! session-gc: GC pass failed\n");
    }
    result.reclaimed = gc.inodes_touched;
    return result;
}

// ----------------------------------------------------------------------
// Sweep
// ----------------------------------------------------------------------

struct Row {
    std::string system;
    ScenarioResult farm;
    ScenarioResult churn;
    ScenarioResult gc;
};

/**
 * Like make_system, but labelled per scenario and without the standard
 * bench tree — each scenario builds its own small namespace.
 */
SystemInstance
make_instance(const std::string& kind, const char* scenario)
{
    SystemInstance instance;
    instance.sim = std::make_unique<sim::Simulation>();
    instance.observer = std::make_unique<ScopedRunObservation>(
        *instance.sim, kind + "/" + scenario);
    constexpr double kVcpus = 64.0;
    constexpr int kVms = 4;
    constexpr int kClientsPerVm = 1;
    if (kind == "lambda-fs") {
        instance.dfs = std::make_unique<core::LambdaFs>(
            *instance.sim, make_lambda_config(kVcpus, kVms, kClientsPerVm));
    } else if (kind == "hopsfs" || kind == "hopsfs+cache") {
        instance.dfs = std::make_unique<hopsfs::HopsFs>(
            *instance.sim,
            make_hops_config(kind, kVcpus, kind == "hopsfs+cache", kVms,
                             kClientsPerVm));
    } else if (kind == "infinicache") {
        instance.dfs = std::make_unique<infinicache::InfiniCacheFs>(
            *instance.sim,
            make_infinicache_config(kVcpus, kVms, kClientsPerVm));
    } else if (kind == "cephfs") {
        instance.dfs = std::make_unique<cephfs::CephFs>(
            *instance.sim, make_cephfs_config(kVms, kClientsPerVm));
    } else {
        std::fprintf(stderr, "unknown system kind: %s\n", kind.c_str());
        std::abort();
    }
    return instance;
}

ScenarioResult
run_scenario(const std::string& kind, const char* scenario,
             ScenarioResult (*body)(SystemInstance&))
{
    SystemInstance system = make_instance(kind, scenario);
    ScenarioResult result = body(system);
    result.orphans_left = system.dfs->authoritative_tree().orphan_count();
    result.sessions_left =
        system.dfs->authoritative_tree().open_session_count();
    return result;
}

/** Round-trip a ScenarioResult through the sweep payload string. */
std::string
serialize(const ScenarioResult& r)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%lld %lld %.17g %lld %zu %zu",
                  static_cast<long long>(r.ops_ok),
                  static_cast<long long>(r.ops_failed), r.total_latency_ms,
                  static_cast<long long>(r.reclaimed), r.orphans_left,
                  r.sessions_left);
    return buf;
}

ScenarioResult
deserialize(const std::string& payload)
{
    ScenarioResult r;
    long long ops_ok = 0;
    long long ops_failed = 0;
    long long reclaimed = 0;
    std::sscanf(payload.c_str(), "%lld %lld %lg %lld %zu %zu", &ops_ok,
                &ops_failed, &r.total_latency_ms, &reclaimed,
                &r.orphans_left, &r.sessions_left);
    r.ops_ok = ops_ok;
    r.ops_failed = ops_failed;
    r.reclaimed = reclaimed;
    return r;
}

void
run_sweep()
{
    std::printf("\n  %d rounds/client, 4 clients per system "
                "(LFS_SCENARIO_ROUNDS)\n",
                rounds());

    // One sweep point per (system, scenario); the result table and the
    // cross-system checks are computed from the merged payloads.
    struct Scenario {
        const char* name;
        ScenarioResult (*body)(SystemInstance&);
    };
    const Scenario scenarios[] = {{"symlink-farm", run_symlink_farm},
                                  {"hardlink-churn", run_hardlink_churn},
                                  {"session-gc", run_session_gc}};
    SweepRunner sweep;
    for (const std::string& kind : microbench_systems()) {
        for (const Scenario& scenario : scenarios) {
            sweep.add(kind + "/" + scenario.name, [kind, scenario]() {
                return serialize(
                    run_scenario(kind, scenario.name, scenario.body));
            });
        }
    }
    std::vector<std::string> payloads = sweep.run();

    std::printf("\n  %-14s | %21s | %21s | %25s\n", "",
                "symlink-farm", "hardlink-churn", "session-gc");
    std::printf("  %-14s | %10s %10s | %10s %10s | %10s %10s %3s\n", "system",
                "ops", "mean ms", "ops", "mean ms", "ops", "mean ms", "rec");

    std::vector<Row> rows;
    size_t next_payload = 0;
    for (const std::string& kind : microbench_systems()) {
        Row row;
        row.system = kind;
        row.farm = deserialize(payloads[next_payload++]);
        row.churn = deserialize(payloads[next_payload++]);
        row.gc = deserialize(payloads[next_payload++]);
        std::printf("  %-14s | %10lld %10.3f | %10lld %10.3f | %10lld %10.3f "
                    "%3lld\n",
                    row.system.c_str(),
                    static_cast<long long>(row.farm.ops_ok), row.farm.mean_ms(),
                    static_cast<long long>(row.churn.ops_ok),
                    row.churn.mean_ms(),
                    static_cast<long long>(row.gc.ops_ok), row.gc.mean_ms(),
                    static_cast<long long>(row.gc.reclaimed));
        rows.push_back(std::move(row));
    }

    // The leaked-lease count is deterministic: rounds() opens per client,
    // half closed, 4 clients -> 4 * ceil(rounds/2) orphans for GC.
    int64_t expected_reclaim = 4ll * ((rounds() + 1) / 2);
    bool all_clean = true;
    bool all_reclaimed = true;
    bool no_failures = true;
    for (const Row& row : rows) {
        all_clean = all_clean && row.gc.orphans_left == 0 &&
                    row.gc.sessions_left == 0;
        all_reclaimed = all_reclaimed && row.gc.reclaimed == expected_reclaim;
        no_failures = no_failures && row.farm.ops_failed == 0 &&
                      row.churn.ops_failed == 0 && row.gc.ops_failed == 0;
    }

    std::printf("\n  Checks:\n");
    print_check("every op on every system succeeds",
                no_failures ? "yes" : "NO — failures above");
    print_check("GC reclaims every leaked lease on every system",
                all_reclaimed ? "yes (" + fmt(expected_reclaim, 0) + ")"
                              : "NO");
    print_check("no orphans or sessions survive the sweep",
                all_clean ? "yes" : "NO");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner(
        "Scenarios", "Extended op-surface lifecycle sweep (links/sessions/GC)");
    lfs::bench::run_sweep();
    return 0;
}
