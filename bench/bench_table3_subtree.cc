/**
 * @file
 * Table 3 — end-to-end latency of subtree mv operations on directories
 * of 2^18, 2^19, and 2^20 files, λFS vs HopsFS. The paper reports λFS
 * 13-16% faster at the smaller sizes (serverless offloading of the
 * batched sub-operations) converging to parity at 2^20 files, where the
 * persistent store's per-row work dominates.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "common/harness.h"
#include "src/namespace/tree_builder.h"

namespace lfs::bench {
namespace {

sim::Task<void>
co_execute_timed(sim::Simulation& sim, workload::DfsClient& client, Op op,
                 OpResult& out, sim::SimTime& done_at)
{
    out = co_await client.execute(std::move(op));
    done_at = sim.now();
}

/** Time one subtree mv of a directory with @p files files. */
double
time_mv(workload::Dfs& dfs, sim::Simulation& sim, int64_t files)
{
    ns::UserContext root;
    ns::build_flat_directory(dfs.authoritative_tree(), "/subtree", files,
                             root, 0);
    dfs.authoritative_tree().mkdirs("/moved", root, 0);
    sim.run_until(sim.now() + sim::sec(5));  // prewarm

    Op op;
    op.type = OpType::kSubtreeMv;
    op.path = "/subtree";
    op.dst = "/moved/subtree";
    OpResult result;
    sim::SimTime begin = sim.now();
    sim::SimTime done_at = -1;
    sim::spawn(co_execute_timed(sim, dfs.client(0), std::move(op), result,
                                done_at));
    // Drive until the operation itself completes; pending client timers
    // (timeouts armed far in the future) must not stretch the clock.
    while (done_at < 0 && sim.step()) {
    }
    if (!result.status.ok()) {
        std::printf("  !! mv failed: %s\n", result.status.to_string().c_str());
        return -1.0;
    }
    return sim::to_msec(done_at - begin);
}

void
run_table()
{
    std::vector<int64_t> sizes{1 << 18, 1 << 19, 1 << 20};
    if (env_int("LFS_SUBTREE_QUICK", 0)) {
        sizes = {1 << 14, 1 << 15, 1 << 16};
    }
    std::printf("\n  %-14s %14s %14s %10s\n", "directory size", "hopsfs (ms)",
                "lambda-fs (ms)", "lfs/hops");
    std::vector<double> ratios;
    for (int64_t files : sizes) {
        std::string size_tag = "/files=" + std::to_string(files);
        double hops_ms = 0;
        {
            sim::Simulation sim;
            ScopedRunObservation obs(sim, "hopsfs" + size_tag);
            hopsfs::HopsFs fs(sim,
                              make_hops_config("hopsfs", 512.0, false, 8, 2));
            hops_ms = time_mv(fs, sim, files);
        }
        double lambda_ms = 0;
        {
            sim::Simulation sim;
            ScopedRunObservation obs(sim, "lambda-fs" + size_tag);
            core::LambdaFs fs(sim, make_lambda_config(512.0, 8, 2));
            lambda_ms = time_mv(fs, sim, files);
        }
        ratios.push_back(lambda_ms / hops_ms);
        std::printf("  %-14lld %14.1f %14.1f %9.3f\n",
                    static_cast<long long>(files), hops_ms, lambda_ms,
                    ratios.back());
    }

    std::printf("\n  Checks:\n");
    print_check("lambda-fs ~16% faster at 2^18 files",
                fmt((1.0 - ratios[0]) * 100, 1) + "% faster");
    print_check("lambda-fs ~13% faster at 2^19 files",
                fmt((1.0 - ratios[1]) * 100, 1) + "% faster");
    print_check("parity at 2^20 files (store-dominated)",
                fmt(ratios[2], 3) + "x");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner("Table 3", "Subtree mv latency vs directory size");
    lfs::bench::run_table();
    return 0;
}
