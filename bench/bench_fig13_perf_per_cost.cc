/**
 * @file
 * Figure 13 — performance-per-cost for read-based operations as the
 * client count grows: λFS (billed with the *simplified* provisioned-time
 * pricing model, per §5.3.3) vs HopsFS+Cache (billed as a 512-vCPU VM
 * cluster).
 */
#include <cstdio>
#include <map>
#include <vector>

#include "common/harness.h"
#include "src/cost/pricing.h"
#include "src/workload/microbench.h"

namespace lfs::bench {
namespace {

void
run_figure()
{
    const double vcpus = env_double("LFS_VCPUS", 512.0);
    std::vector<int> client_counts;
    for (int c = 8; c <= 1024; c *= 2) {
        client_counts.push_back(c);
    }
    std::vector<OpType> ops{OpType::kReadFile, OpType::kLs, OpType::kStat};
    std::vector<std::string> systems{"lambda-fs", "hopsfs+cache"};
    std::map<OpType, std::map<std::string, std::vector<double>>> ppc;

    for (OpType op : ops) {
        for (const std::string& system : systems) {
            for (int clients : client_counts) {
                SystemInstance instance = make_system(system, vcpus, clients);
                double cost_before =
                    instance.dfs->simplified_cost_so_far();
                workload::MicrobenchConfig mcfg;
                mcfg.op = op;
                mcfg.num_clients = clients;
                mcfg.ops_per_client = ops_per_client();
                mcfg.seed = 3000 + static_cast<uint64_t>(clients);
                workload::MicrobenchResult r = workload::run_microbench(
                    *instance.sim, *instance.dfs, std::move(instance.tree),
                    mcfg);
                double cost =
                    instance.dfs->simplified_cost_so_far() - cost_before;
                ppc[op][system].push_back(
                    cost::perf_per_cost(static_cast<double>(r.completed),
                                        cost));
            }
        }
    }

    for (OpType op : ops) {
        std::printf("\n  %s performance-per-cost (ops per $) vs clients:\n",
                    op_name(op));
        std::printf("  %-8s %18s %18s %10s\n", "clients", "lambda-fs",
                    "hopsfs+cache", "ratio");
        for (size_t i = 0; i < client_counts.size(); ++i) {
            double l = ppc[op]["lambda-fs"][i];
            double h = ppc[op]["hopsfs+cache"][i];
            std::printf("  %-8d %18.3g %18.3g %9.2fx\n", client_counts[i],
                        l, h, h > 0 ? l / h : 0.0);
        }
    }

    std::printf("\n  Checks:\n");
    print_check("lambda-fs higher perf-per-cost for read at all sizes",
                fmt(ppc[OpType::kReadFile]["lambda-fs"].back() /
                    ppc[OpType::kReadFile]["hopsfs+cache"].back()) +
                    "x at 1024 clients");
    print_check("ls advantage even larger (paper: +32.7% tput, fewer vCPUs)",
                fmt(ppc[OpType::kLs]["lambda-fs"].back() /
                    ppc[OpType::kLs]["hopsfs+cache"].back()) + "x");
}

}  // namespace
}  // namespace lfs::bench

int
main(int argc, char** argv)
{
    lfs::bench::parse_args(argc, argv);
    lfs::bench::print_banner(
        "Figure 13", "Performance-per-cost vs clients (read ops)");
    lfs::bench::run_figure();
    return 0;
}
