/**
 * @file
 * Quickstart: build a λFS deployment inside the simulator, create a few
 * files through the client library, read them back, and look at what the
 * system did (RPC pathways, cache behaviour, elastic scaling, cost).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 */
#include <cstdio>

#include "src/core/lambda_fs.h"
#include "src/sim/simulation.h"

using namespace lfs;

namespace {

/** Execute one metadata op and print the outcome. */
sim::Task<void>
run_op(sim::Simulation& sim, workload::Dfs& fs, size_t client, Op op)
{
    sim::SimTime begin = sim.now();
    OpResult result = co_await fs.client(client).execute(op);
    std::printf("  [client %zu] %-6s %-24s -> %-12s (%.2f ms%s)\n", client,
                op_name(op.type), op.path.c_str(),
                result.status.to_string().c_str(),
                sim::to_msec(sim.now() - begin),
                result.cache_hit ? ", cache hit" : "");
}

}  // namespace

int
main()
{
    // 1. A simulation plus a λFS deployment: 4 NameNode deployments on a
    //    64-vCPU FaaS pool, 16 clients on 2 VMs, NDB-model store.
    sim::Simulation sim;
    core::LambdaFsConfig config;
    config.num_deployments = 4;
    config.total_vcpus = 64.0;
    config.function.vcpus = 4.0;
    config.num_client_vms = 2;
    config.clients_per_vm = 8;
    core::LambdaFs fs(sim, config);

    // 2. Seed a namespace directly in the persistent store (untimed).
    ns::UserContext admin;  // uid 0
    fs.authoritative_tree().mkdirs("/data/logs", admin, 0);
    sim.run_until(sim::sec(3));  // let prewarmed NameNodes boot

    std::printf("quickstart: λFS with %d deployments, %zu clients\n",
                config.num_deployments, fs.client_count());

    // 3. Issue metadata operations through the client library. The first
    //    RPC travels over HTTP (and triggers a TCP connect-back); later
    //    ones use the direct TCP connection and hit the NameNode cache.
    auto make = [](OpType type, const char* p, const char* dst = "") {
        Op op;
        op.type = type;
        op.path = p;
        op.dst = dst;
        return op;
    };
    sim::spawn(run_op(sim, fs, 0, make(OpType::kCreateFile, "/data/logs/a")));
    sim.run_until(sim.now() + sim::sec(5));
    sim::spawn(run_op(sim, fs, 0, make(OpType::kStat, "/data/logs/a")));
    sim.run_until(sim.now() + sim::sec(1));
    sim::spawn(run_op(sim, fs, 0, make(OpType::kStat, "/data/logs/a")));
    sim.run_until(sim.now() + sim::sec(1));
    sim::spawn(run_op(sim, fs, 5, make(OpType::kLs, "/data/logs")));
    sim.run_until(sim.now() + sim::sec(1));
    sim::spawn(run_op(sim, fs, 5,
                      make(OpType::kMv, "/data/logs/a", "/data/logs/b")));
    sim.run_until(sim.now() + sim::sec(1));
    sim::spawn(run_op(sim, fs, 0, make(OpType::kStat, "/data/logs/a")));
    sim::spawn(run_op(sim, fs, 0, make(OpType::kStat, "/data/logs/b")));
    sim.run_until(sim.now() + sim::sec(5));

    // 4. What happened under the hood.
    const core::LfsClient& c0 = fs.lfs_client(0);
    std::printf("\nunder the hood:\n");
    std::printf("  client 0 RPCs: %llu TCP, %llu HTTP\n",
                static_cast<unsigned long long>(c0.tcp_rpcs()),
                static_cast<unsigned long long>(c0.http_rpcs()));
    std::printf("  active NameNodes: %d, cold starts: %llu\n",
                fs.active_name_nodes(),
                static_cast<unsigned long long>(
                    fs.platform().total_cold_starts()));
    std::printf("  TCP connections established: %llu\n",
                static_cast<unsigned long long>(
                    fs.tcp_registry().connections_established()));
    std::printf("  coherence INVs delivered: %llu\n",
                static_cast<unsigned long long>(
                    fs.coordinator().invs_sent()));
    std::printf("  pay-per-use cost so far: $%.6f\n", fs.cost_so_far());
    return 0;
}
