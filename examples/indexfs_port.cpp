/**
 * @file
 * λIndexFS demo (§4, §5.7): the λFS serverless caching layer ported in
 * front of IndexFS' LSM (LevelDB-model) stores, driven by a miniature
 * tree-test: a write phase of mknods followed by a read phase of random
 * getattrs, with the LSM internals (flushes, compactions, bloom-filtered
 * reads) visible.
 *
 *   ./build/examples/example_indexfs_port
 */
#include <cstdio>

#include "src/indexfs/indexfs.h"
#include "src/indexfs/lambda_indexfs.h"
#include "src/sim/simulation.h"
#include "src/workload/tree_test.h"

using namespace lfs;

namespace {

void
report(const char* label, const workload::TreeTestResult& r)
{
    std::printf("  %-16s writes %8.0f ops/s, reads %8.0f ops/s, "
                "aggregate %8.0f ops/s (%lld failures)\n",
                label, r.write_ops_per_sec, r.read_ops_per_sec,
                r.agg_ops_per_sec, static_cast<long long>(r.failures));
}

}  // namespace

int
main()
{
    workload::TreeTestConfig tcfg;
    tcfg.num_clients = 32;
    tcfg.ops_per_client = 500;
    tcfg.num_dirs = 32;

    std::printf("tree-test: %d clients x %lld mknods then %lld getattrs\n\n",
                tcfg.num_clients,
                static_cast<long long>(tcfg.ops_per_client),
                static_cast<long long>(tcfg.ops_per_client));
    {
        sim::Simulation sim;
        indexfs::IndexFsConfig config;
        config.clients_per_vm = 8;
        indexfs::IndexFs fs(sim, config);
        workload::TreeTestResult r = workload::run_tree_test(
            sim, fs, tcfg, [&fs](const std::string& dir) {
                fs.preload(dir, ns::INodeType::kDirectory);
            });
        report("indexfs", r);
        std::printf("    lsm[0]: %llu flushes, %llu compactions, %llu "
                    "sstable reads\n",
                    static_cast<unsigned long long>(
                        fs.server(0).lsm().flushes()),
                    static_cast<unsigned long long>(
                        fs.server(0).lsm().compactions()),
                    static_cast<unsigned long long>(
                        fs.server(0).lsm().sstable_reads()));
    }
    {
        sim::Simulation sim;
        indexfs::LambdaIndexFsConfig config;
        config.clients_per_vm = 8;
        indexfs::LambdaIndexFs fs(sim, config);
        workload::TreeTestResult r = workload::run_tree_test(
            sim, fs, tcfg, [&fs](const std::string& dir) {
                fs.preload(dir, ns::INodeType::kDirectory);
            });
        report("lambda-indexfs", r);
        std::printf("    serverless cache nodes active: %d\n",
                    fs.active_name_nodes());
    }
    return 0;
}
