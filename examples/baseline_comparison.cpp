/**
 * @file
 * Run the same closed-loop read microbenchmark against λFS, HopsFS,
 * HopsFS+Cache, InfiniCache, and the CephFS-like baseline, and print a
 * small comparison table — a miniature of the paper's Figure 11.
 *
 *   ./build/examples/example_baseline_comparison
 */
#include <cstdio>
#include <memory>

#include "src/cephfs/cephfs.h"
#include "src/core/lambda_fs.h"
#include "src/hdfs/hdfs.h"
#include "src/hopsfs/hopsfs.h"
#include "src/infinicache/infinicache.h"
#include "src/namespace/tree_builder.h"
#include "src/workload/microbench.h"

using namespace lfs;

namespace {

ns::BuiltTree
demo_tree(ns::NamespaceTree& tree)
{
    ns::TreeSpec spec;
    spec.root = "/bench";
    spec.depth = 3;
    spec.fanout = 6;
    spec.files_per_dir = 6;
    return ns::build_balanced_tree(tree, spec, {}, 0);
}

void
report(const char* label, const workload::MicrobenchResult& r)
{
    std::printf("  %-14s %12.0f ops/s %10.2f ms mean %10.2f ms p99\n",
                label, r.ops_per_sec, r.mean_latency_ms, r.p99_latency_ms);
}

}  // namespace

int
main()
{
    const int clients = 128;
    const int ops = 128;
    workload::MicrobenchConfig mcfg;
    mcfg.op = OpType::kReadFile;
    mcfg.num_clients = clients;
    mcfg.ops_per_client = ops;

    std::printf("read microbenchmark: %d clients x %d ops, 128 vCPUs\n\n",
                clients, ops);
    {
        sim::Simulation sim;
        core::LambdaFsConfig config;
        config.total_vcpus = 128.0;
        config.function.vcpus = 4.0;
        config.num_deployments = 8;
        config.clients_per_vm = clients / 8;
        core::LambdaFs fs(sim, config);
        report("lambda-fs", workload::run_microbench(
                                sim, fs, demo_tree(fs.authoritative_tree()),
                                mcfg));
    }
    {
        sim::Simulation sim;
        hopsfs::HopsFsConfig config;
        config.num_name_nodes = 8;
        config.clients_per_vm = clients / 8;
        hopsfs::HopsFs fs(sim, config);
        report("hopsfs", workload::run_microbench(
                             sim, fs, demo_tree(fs.authoritative_tree()),
                             mcfg));
    }
    {
        sim::Simulation sim;
        hopsfs::HopsFsConfig config;
        config.label = "hopsfs+cache";
        config.num_name_nodes = 8;
        config.cache_bytes_per_nn = 1ull << 30;
        config.clients_per_vm = clients / 8;
        hopsfs::HopsFs fs(sim, config);
        report("hopsfs+cache", workload::run_microbench(
                                   sim, fs,
                                   demo_tree(fs.authoritative_tree()), mcfg));
    }
    {
        sim::Simulation sim;
        infinicache::InfiniCacheConfig config;
        config.num_functions = 16;
        config.total_vcpus = 128.0;
        config.clients_per_vm = clients / 8;
        infinicache::InfiniCacheFs fs(sim, config);
        report("infinicache", workload::run_microbench(
                                  sim, fs,
                                  demo_tree(fs.authoritative_tree()), mcfg));
    }
    {
        sim::Simulation sim;
        cephfs::CephFsConfig config;
        config.clients_per_vm = clients / 8;
        cephfs::CephFs fs(sim, config);
        report("cephfs", workload::run_microbench(
                             sim, fs, demo_tree(fs.authoritative_tree()),
                             mcfg));
    }
    {
        sim::Simulation sim;
        hdfs::HdfsConfig config;
        config.clients_per_vm = clients / 8;
        hdfs::Hdfs fs(sim, config);
        report("hdfs", workload::run_microbench(
                           sim, fs, demo_tree(fs.authoritative_tree()),
                           mcfg));
    }
    std::printf("\n(the full sweeps live in build/bench/bench_fig11_* and "
                "bench_fig12_*)\n");
    return 0;
}
