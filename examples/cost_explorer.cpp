/**
 * @file
 * Cost-model explorer: the same read workload at several utilization
 * levels, billed three ways — AWS Lambda pay-per-use (λFS's native
 * model), the "simplified" provisioned-time model of Figure 9, and a
 * serverful VM cluster (HopsFS's model). Shows *why* the paper's cost
 * gap grows as utilization drops: idle serverful capacity still bills,
 * idle functions do not.
 *
 *   ./build/examples/example_cost_explorer
 */
#include <cstdio>

#include "src/core/lambda_fs.h"
#include "src/cost/pricing.h"
#include "src/namespace/tree_builder.h"
#include "src/sim/simulation.h"

using namespace lfs;

namespace {

sim::Task<void>
co_paced_reader(sim::Simulation& sim, core::LambdaFs& fs, size_t client,
                std::vector<std::string> files, sim::SimTime gap,
                sim::SimTime until, sim::Rng rng, long& completed)
{
    while (sim.now() < until) {
        Op op;
        op.type = OpType::kStat;
        op.path = files[rng.index(files.size())];
        OpResult result = co_await fs.client(client).execute(op);
        if (result.status.ok()) {
            ++completed;
        }
        co_await sim::delay(sim, gap);
    }
}

}  // namespace

int
main()
{
    std::printf("60-second read workload, 32 clients, billed three ways\n");
    std::printf("\n  %-14s %12s | %14s %16s %14s\n", "think time",
                "ops done", "pay-per-use $", "simplified $", "VM cluster $");
    for (sim::SimTime gap : {sim::msec(1), sim::msec(10), sim::msec(100),
                             sim::msec(1000)}) {
        sim::Simulation sim;
        core::LambdaFsConfig config;
        config.num_deployments = 4;
        config.total_vcpus = 64.0;
        config.function.vcpus = 4.0;
        config.function.memory_gb = 6.0;
        config.num_client_vms = 2;
        config.clients_per_vm = 16;
        core::LambdaFs fs(sim, config);
        auto built = ns::build_flat_directory(fs.authoritative_tree(),
                                              "/data", 500, {}, 0);
        sim.run_until(sim::sec(3));
        sim::SimTime until = sim.now() + sim::sec(60);
        sim::Rng rng(1);
        long completed = 0;
        for (size_t c = 0; c < fs.client_count(); ++c) {
            sim::spawn(co_paced_reader(sim, fs, c, built.files, gap, until,
                                       rng.fork(), completed));
        }
        sim.run_until(until + sim::sec(2));
        // What an equally sized serverful cluster would have cost.
        double vm_dollars = cost::vm_cost(config.total_vcpus, sim::sec(60));
        std::printf("  %-14s %12llu | %14.6f %16.6f %14.6f\n",
                    (std::to_string(gap / sim::msec(1)) + " ms").c_str(),
                    static_cast<unsigned long long>(completed),
                    fs.cost_so_far(), fs.simplified_cost_so_far(),
                    vm_dollars);
    }
    std::printf("\n(pay-per-use tracks actual work; the serverful column is "
                "flat regardless of load —\n the mechanism behind Figure 9's "
                "7.14x gap)\n");
    return 0;
}
