/**
 * @file
 * Coherence protocol demo: two clients on different VMs read the same
 * file (each warming a different route), one deletes it, and the other's
 * next read observes the deletion immediately — because the write held
 * exclusive store locks while INV/ACKs propagated (Algorithm 1). Also
 * shows a subtree prefix invalidation clearing thousands of cached
 * entries in one protocol round.
 *
 *   ./build/examples/example_coherence_demo
 */
#include <cstdio>

#include "src/core/lambda_fs.h"
#include "src/namespace/tree_builder.h"
#include "src/sim/simulation.h"

using namespace lfs;

namespace {

sim::Task<void>
run_op(sim::Simulation& sim, workload::Dfs& fs, size_t client, Op op,
       const char* note)
{
    OpResult result = co_await fs.client(client).execute(op);
    std::printf("  t=%7.3fs client %zu %-6s %-18s -> %-14s %s\n",
                sim::to_sec(sim.now()), client, op_name(op.type),
                op.path.c_str(), result.status.to_string().c_str(), note);
}

Op
make(OpType type, const char* p)
{
    Op op;
    op.type = type;
    op.path = p;
    return op;
}

}  // namespace

int
main()
{
    sim::Simulation sim;
    core::LambdaFsConfig config;
    config.num_deployments = 4;
    config.total_vcpus = 64.0;
    config.function.vcpus = 4.0;
    config.num_client_vms = 2;
    config.clients_per_vm = 8;
    core::LambdaFs fs(sim, config);
    ns::UserContext admin;
    fs.authoritative_tree().mkdirs("/shared", admin, 0);
    fs.authoritative_tree().create_file("/shared/doc", admin, 0);
    ns::build_flat_directory(fs.authoritative_tree(), "/shared/big", 5000,
                             admin, 0);
    sim.run_until(sim::sec(3));

    std::printf("single-inode coherence:\n");
    // Clients 0 and 9 live on different VMs; both cache routes to the
    // deployment owning /shared.
    sim::spawn(run_op(sim, fs, 0, make(OpType::kStat, "/shared/doc"),
                      "(warms NameNode cache)"));
    sim.run_until(sim.now() + sim::sec(2));
    sim::spawn(run_op(sim, fs, 9, make(OpType::kStat, "/shared/doc"), ""));
    sim.run_until(sim.now() + sim::sec(2));
    sim::spawn(run_op(sim, fs, 9, make(OpType::kDeleteFile, "/shared/doc"),
                      "(INV/ACK round, then commit)"));
    sim.run_until(sim.now() + sim::sec(2));
    sim::spawn(run_op(sim, fs, 0, make(OpType::kStat, "/shared/doc"),
                      "(must be NOT_FOUND: no stale cache)"));
    sim.run_until(sim.now() + sim::sec(2));

    std::printf("\nsubtree coherence (5000-file directory):\n");
    sim::spawn(run_op(sim, fs, 0, make(OpType::kStat, "/shared/big/f42"),
                      "(warms the subtree's partition)"));
    sim.run_until(sim.now() + sim::sec(2));
    uint64_t invs_before = fs.coordinator().invs_sent();
    sim::spawn(run_op(sim, fs, 3, make(OpType::kSubtreeDelete, "/shared/big"),
                      "(one prefix INV per deployment)"));
    sim.run_until(sim.now() + sim::sec(30));
    sim::spawn(run_op(sim, fs, 0, make(OpType::kStat, "/shared/big/f42"),
                      "(gone everywhere)"));
    sim.run_until(sim.now() + sim::sec(2));

    std::printf("\nprotocol stats: %llu INVs total (%llu for the subtree "
                "op), %llu coherence rounds\n",
                static_cast<unsigned long long>(fs.coordinator().invs_sent()),
                static_cast<unsigned long long>(fs.coordinator().invs_sent() -
                                                invs_before),
                static_cast<unsigned long long>(fs.coordinator().rounds()));
    return 0;
}
