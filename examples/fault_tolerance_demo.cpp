/**
 * @file
 * Fault-tolerance demo (§3.6, §5.6): a steady read workload runs while a
 * NameNode is killed every few seconds. Requests in flight on a killed
 * instance vanish (reclaimed containers never answer); the client-side
 * straggler-mitigation timeout detects the silence and transparently
 * resubmits — over a surviving connection when one exists, over HTTP
 * otherwise — and the platform replaces the lost instance.
 *
 *   ./build/examples/example_fault_tolerance_demo
 */
#include <cstdio>

#include "src/core/lambda_fs.h"
#include "src/namespace/tree_builder.h"
#include "src/sim/simulation.h"
#include "src/workload/fault_injector.h"

using namespace lfs;

namespace {

sim::Task<void>
co_reader(sim::Simulation& sim, core::LambdaFs& fs, size_t client,
          std::vector<std::string> files, sim::Rng rng, bool& stop,
          int64_t& completed, int64_t& failed)
{
    while (!stop) {
        Op op;
        op.type = OpType::kStat;
        op.path = files[rng.index(files.size())];
        OpResult result = co_await fs.client(client).execute(op);
        if (result.status.ok()) {
            ++completed;
        } else {
            ++failed;
        }
        co_await sim::delay(sim, sim::msec(rng.uniform_int(1, 8)));
    }
}

}  // namespace

int
main()
{
    sim::Simulation sim;
    core::LambdaFsConfig config;
    config.num_deployments = 4;
    config.total_vcpus = 64.0;
    config.function.vcpus = 4.0;
    config.num_client_vms = 2;
    config.clients_per_vm = 16;
    core::LambdaFs fs(sim, config);
    auto built = ns::build_flat_directory(fs.authoritative_tree(), "/data",
                                          400, {}, 0);
    sim.run_until(sim::sec(3));

    bool stop = false;
    int64_t completed = 0;
    int64_t failed = 0;
    sim::Rng rng(3);
    for (size_t c = 0; c < fs.client_count(); ++c) {
        sim::spawn(co_reader(sim, fs, c, built.files, rng.fork(), stop,
                             completed, failed));
    }
    workload::FaultInjector injector(sim, sim::sec(8), [&fs](int round) {
        bool killed = fs.kill_name_node(
            round % fs.platform().deployment_count());
        std::printf("        >>> killed a NameNode in deployment %d\n",
                    round % fs.platform().deployment_count());
        return killed;
    });
    injector.start(sim::sec(60));

    std::printf("t(s)  completed/s   NameNodes  resubmissions  timeouts\n");
    int64_t prev = 0;
    uint64_t prev_resub = 0;
    uint64_t prev_to = 0;
    for (int t = 5; t <= 70; t += 5) {
        sim.run_until(sim::sec(t));
        uint64_t resub = 0;
        uint64_t timeouts = 0;
        for (size_t c = 0; c < fs.client_count(); ++c) {
            resub += fs.lfs_client(c).resubmissions();
            timeouts += fs.lfs_client(c).timeouts();
        }
        std::printf("%-5d %11.0f %11d %14llu %9llu\n", t,
                    static_cast<double>(completed - prev) / 5.0,
                    fs.active_name_nodes(),
                    static_cast<unsigned long long>(resub - prev_resub),
                    static_cast<unsigned long long>(timeouts - prev_to));
        prev = completed;
        prev_resub = resub;
        prev_to = timeouts;
    }
    stop = true;
    sim.run_until(sim.now() + sim::sec(30));
    std::printf("\ntotal: %lld completed, %lld failed after retries; "
                "%llu kills survived\n",
                static_cast<long long>(completed),
                static_cast<long long>(failed),
                static_cast<unsigned long long>(injector.kills()));
    return 0;
}
