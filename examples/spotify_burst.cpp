/**
 * @file
 * Elasticity demo: run a short burst-heavy industrial workload against
 * λFS and watch the serverless NameNode fleet grow with the offered load
 * and shrink afterwards — the behaviour behind Figure 8.
 *
 *   ./build/examples/example_spotify_burst
 */
#include <cstdio>

#include "src/core/lambda_fs.h"
#include "src/namespace/tree_builder.h"
#include "src/sim/simulation.h"
#include "src/workload/spotify_workload.h"

using namespace lfs;

int
main()
{
    sim::Simulation sim;
    core::LambdaFsConfig config;
    config.num_deployments = 8;
    config.total_vcpus = 64.0;
    config.function.vcpus = 2.0;
    config.function.idle_reclaim = sim::sec(20);  // visible scale-in
    config.num_client_vms = 4;
    config.clients_per_vm = 32;
    core::LambdaFs fs(sim, config);

    ns::TreeSpec spec;
    spec.root = "/app";
    spec.depth = 3;
    spec.fanout = 6;
    spec.files_per_dir = 8;
    ns::BuiltTree tree =
        ns::build_balanced_tree(fs.authoritative_tree(), spec, {}, 0);
    sim.run_until(sim::sec(3));

    workload::SpotifyConfig wcfg;
    wcfg.base_throughput = 2000.0;
    wcfg.epoch = sim::sec(10);
    wcfg.duration = sim::sec(120);
    wcfg.num_client_vms = 4;
    workload::SpotifyWorkload workload(sim, fs, std::move(tree), wcfg);
    workload.start();

    std::printf("t(s)  target-rate  completed/s  NameNodes  vCPU-used\n");
    sim::SimTime start = sim.now();
    uint64_t prev_completed = 0;
    for (int t = 0; t < 140; t += 5) {
        sim.run_until(start + sim::sec(t));
        uint64_t completed = fs.metrics().completed();
        std::printf("%-5d %11.0f %12.0f %10d %10.1f\n", t,
                    workload.current_rate(),
                    static_cast<double>(completed - prev_completed) / 5.0,
                    fs.active_name_nodes(), fs.platform().pool().used());
        prev_completed = completed;
    }
    std::printf("\ntotal: %llu ops completed, %llu failed, "
                "cost $%.4f (pay-per-use) vs $%.4f (provisioned model)\n",
                static_cast<unsigned long long>(fs.metrics().completed()),
                static_cast<unsigned long long>(fs.metrics().failed()),
                fs.cost_so_far(), fs.simplified_cost_so_far());
    return 0;
}
